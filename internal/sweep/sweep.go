// Package sweep is the batch simulation engine behind every campaign: it
// takes a set of (benchmark × configuration) points, executes them on a
// bounded worker pool with context cancellation, and memoizes completed
// runs under a stable configuration hash so points repeated across
// experiments (for example the shared baselines of Figures 4–7) are
// simulated exactly once. Results come back in submission order regardless
// of scheduling, so campaign output is byte-identical for any worker count.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
)

// Point is one simulation of a campaign: a benchmark (and workload seed)
// on a machine configuration.
type Point struct {
	// Key labels the point in the caller's result map. It has no effect on
	// execution or memoization.
	Key string
	// Benchmark names the synthetic SPEC2K workload.
	Benchmark string
	// Seed selects the workload's pseudo-random streams (0 = canonical).
	Seed uint64
	// Config is the full machine configuration.
	Config sim.Config
}

// Stats aggregates an engine's lifetime counters across Run calls.
type Stats struct {
	// Points counts every submitted point; Ran counts the simulations that
	// actually executed; CacheHits counts points satisfied by a memoized
	// (or in-flight duplicate) run. Points == Ran + CacheHits.
	Points, Ran, CacheHits int
	// SimTime is the summed wall time of executed simulations; WorstRun is
	// the longest single simulation and WorstKey its point key.
	SimTime  time.Duration
	WorstRun time.Duration
	WorstKey string
}

// Progress is a point-in-time snapshot delivered to the progress callback
// after every completed simulation of a Run call.
type Progress struct {
	// Done and Total count points of the current Run call; CacheHits is how
	// many of Done were served from the memo cache.
	Done, Total, CacheHits int
	// SimsPerSec is executed simulations per wall-clock second since the
	// Run call started.
	SimsPerSec float64
	// WorstRun and WorstKey identify the slowest simulation so far (across
	// the engine's lifetime).
	WorstRun time.Duration
	WorstKey string
}

// Option configures an Engine.
type Option func(*Engine)

// Workers bounds concurrent simulations (minimum 1). The default is
// runtime.GOMAXPROCS(0).
func Workers(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(e *Engine) { e.workers = n }
}

// OnProgress installs a progress callback. It is invoked from worker
// goroutines (serialized, but concurrent with the caller of Run), so it
// must be safe to call from another goroutine.
func OnProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithoutCache disables memoization: every point runs, even duplicates.
func WithoutCache() Option {
	return func(e *Engine) { e.noCache = true }
}

// entry is one memoized (or in-flight) simulation.
type entry struct {
	res  sim.Results
	err  error
	done chan struct{} // closed once res/err are valid
}

// Engine executes sweep points with bounded parallelism and a memoization
// cache that persists across Run calls. An Engine is safe for concurrent
// use.
type Engine struct {
	workers  int
	progress func(Progress)
	noCache  bool

	mu    sync.Mutex
	cache map[string]*entry
	stats Stats
}

// New returns an engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		cache:   make(map[string]*entry),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Stats returns a snapshot of the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// runItem is one simulation scheduled by a Run call.
type runItem struct {
	fp string
	p  Point
	en *entry
}

// Run executes the points and returns their results in submission order.
// Points whose fingerprint matches a memoized or in-flight run are not
// re-simulated. On context cancellation the unstarted remainder is dropped
// (in-flight simulations complete and stay cached) and ctx.Err() is
// returned.
func (e *Engine) Run(ctx context.Context, points []Point) ([]sim.Results, error) {
	// Plan sequentially: map each point to its cache entry, creating
	// entries for the runs this call owns. Hit accounting happens here, in
	// submission order, so it is deterministic for any worker count.
	waiters := make([]*entry, len(points))
	var toRun []runItem
	e.mu.Lock()
	e.stats.Points += len(points)
	for i, p := range points {
		fp, err := p.Fingerprint()
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("sweep: point %q: %w", p.Key, err)
		}
		if !e.noCache {
			if en, ok := e.cache[fp]; ok {
				e.stats.CacheHits++
				waiters[i] = en
				continue
			}
		}
		en := &entry{done: make(chan struct{})}
		if !e.noCache {
			e.cache[fp] = en
		}
		waiters[i] = en
		toRun = append(toRun, runItem{fp: fp, p: p, en: en})
	}
	hits := len(points) - len(toRun)
	e.mu.Unlock()

	// Fan the owned runs out over the worker pool. Workers drain the whole
	// channel even after cancellation, failing (and uncaching) the items
	// they skip, so every entry's done channel is guaranteed to close.
	start := time.Now()
	jobs := make(chan runItem)
	var wg sync.WaitGroup
	done := 0
	var progMu sync.Mutex
	note := func(it runItem, dur time.Duration) {
		e.mu.Lock()
		e.stats.Ran++
		e.stats.SimTime += dur
		if dur > e.stats.WorstRun {
			e.stats.WorstRun = dur
			e.stats.WorstKey = it.p.Key
		}
		worst, worstKey := e.stats.WorstRun, e.stats.WorstKey
		e.mu.Unlock()
		if e.progress == nil {
			return
		}
		progMu.Lock()
		done++
		p := Progress{
			Done:       hits + done,
			Total:      len(points),
			CacheHits:  hits,
			SimsPerSec: float64(done) / time.Since(start).Seconds(),
			WorstRun:   worst,
			WorstKey:   worstKey,
		}
		e.progress(p)
		progMu.Unlock()
	}
	workers := e.workers
	if workers > len(toRun) {
		workers = len(toRun)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				if ctx.Err() != nil {
					e.fail(it, ctx.Err())
					continue
				}
				t0 := time.Now()
				m, err := sim.NewBench(it.p.Benchmark,
					sim.WithConfig(it.p.Config), sim.WithSeed(it.p.Seed))
				if err != nil {
					e.fail(it, err)
					continue
				}
				it.en.res = m.Run(it.p.Benchmark)
				close(it.en.done)
				note(it, time.Since(t0))
			}
		}()
	}
	for _, it := range toRun {
		jobs <- it
	}
	close(jobs)
	wg.Wait()

	// Assemble in submission order. Entries owned by concurrent Run calls
	// may still be in flight; wait on them.
	out := make([]sim.Results, len(points))
	for i, en := range waiters {
		<-en.done
		if en.err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", points[i].Key, en.err)
		}
		out[i] = en.res
	}
	return out, nil
}

// fail marks an entry as errored and, for transient errors (cancellation),
// removes it from the cache so a later Run call re-executes the point.
func (e *Engine) fail(it runItem, err error) {
	e.mu.Lock()
	delete(e.cache, it.fp)
	e.mu.Unlock()
	it.en.err = err
	close(it.en.done)
}

// RunMap executes the points and returns the results keyed by Point.Key.
func (e *Engine) RunMap(ctx context.Context, points []Point) (map[string]sim.Results, error) {
	res, err := e.Run(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Results, len(points))
	for i, p := range points {
		out[p.Key] = res[i]
	}
	return out, nil
}
