// Package sweep is the batch simulation engine behind every campaign: it
// takes a set of (benchmark × configuration) points, executes them on a
// bounded worker pool with context cancellation, and memoizes completed
// runs under a stable configuration hash so points repeated across
// experiments (for example the shared baselines of Figures 4–7) are
// simulated exactly once. Results come back in submission order regardless
// of scheduling, so campaign output is byte-identical for any worker count.
//
// Work is scoped in two layers. The Engine owns the shared, contended
// resources — the worker pool, its reusable machine arenas, the
// fingerprint-keyed memo cache and the optional checkpoint — and survives
// across campaigns. Each worker holds a persistent machine slot, so
// consecutive memo-missed runs recycle one arena in place (Machine.Reset)
// instead of reallocating tens of megabytes of simulator state per point. A Job (NewJob) is
// one campaign's view of the engine: it carries its own progress callback
// and its own Stats, so two jobs running concurrently on one engine share
// the cache without interleaving each other's counters. RunAll is the
// primitive (every point's individual outcome, in submission order); Run
// and RunMap are thin wrappers over it.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/sim"
)

// Point is one simulation of a campaign: a benchmark (and workload seed)
// on a machine configuration.
type Point struct {
	// Key labels the point in the caller's result map. It has no effect on
	// execution or memoization.
	Key string
	// Benchmark names the synthetic SPEC2K workload.
	Benchmark string
	// Seed selects the workload's pseudo-random streams (0 = canonical).
	Seed uint64
	// Config is the full machine configuration.
	Config sim.Config
}

// Stats aggregates counters across Run calls. Engine.Stats returns the
// engine's lifetime totals (every job summed); Job.Stats returns one job's
// share.
type Stats struct {
	// Points counts every submitted point; Ran counts the simulations that
	// actually executed; CacheHits counts points satisfied by a memoized
	// (or in-flight duplicate) run. For all-success campaigns,
	// Points == Ran + CacheHits + CheckpointHits.
	Points, Ran, CacheHits int
	// CheckpointHits counts points satisfied from the attached checkpoint
	// file (completed in an earlier process lifetime).
	CheckpointHits int
	// Failed counts points that genuinely failed (cancellations are not
	// failures); Retried counts extra attempts spent on transient failures.
	Failed, Retried int
	// ArenaReuses counts executed simulations that recycled a worker's
	// machine arena in place (Machine.ResetBench); FreshBuilds counts the
	// ones that had to construct a machine. ArenaReuses + FreshBuilds is the
	// number of run attempts (Ran plus retries).
	ArenaReuses, FreshBuilds int
	// Evicted counts memo-cache entries dropped by the CacheBound policy.
	Evicted int
	// SimTime is the summed wall time of executed simulations; WorstRun is
	// the longest single simulation and WorstKey its point key.
	SimTime  time.Duration
	WorstRun time.Duration
	WorstKey string
}

// RunsPerSec returns executed simulations per second of simulation wall
// time — the engine's throughput over the work it actually did, independent
// of idle periods between campaigns. Zero until something has run.
func (s Stats) RunsPerSec() float64 {
	if s.SimTime <= 0 {
		return 0
	}
	return float64(s.Ran) / s.SimTime.Seconds()
}

// ReuseRate returns the fraction of run attempts that recycled a worker
// arena instead of constructing a machine (0 when nothing has run).
func (s Stats) ReuseRate() float64 {
	attempts := s.ArenaReuses + s.FreshBuilds
	if attempts == 0 {
		return 0
	}
	return float64(s.ArenaReuses) / float64(attempts)
}

// Progress is a point-in-time snapshot delivered to the progress callback
// after every completed simulation of a RunAll call.
type Progress struct {
	// Done and Total count points of the current RunAll call; CacheHits is
	// how many of Done were served from the memo cache.
	Done, Total, CacheHits int
	// SimsPerSec is executed simulations per wall-clock second since the
	// RunAll call started.
	SimsPerSec float64
	// WorstRun and WorstKey identify the slowest simulation so far (across
	// the owning job's lifetime).
	WorstRun time.Duration
	WorstKey string
}

// Option configures an Engine.
type Option func(*Engine)

// Workers bounds concurrent simulations (minimum 1). The default is
// runtime.GOMAXPROCS(0).
func Workers(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(e *Engine) { e.workers = n }
}

// OnProgress installs the engine's default progress callback, inherited by
// every job that does not set its own (JobProgress). It is invoked from
// worker goroutines (serialized per RunAll call, but concurrent with the
// caller), so it must be safe to call from another goroutine.
func OnProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithoutCache disables memoization: every point runs, even duplicates.
func WithoutCache() Option {
	return func(e *Engine) { e.noCache = true }
}

// RunTimeout bounds each simulation's wall-clock time. A run past its
// deadline fails with a structured *sim.CheckError of kind FailDeadline —
// classified transient, so it is retried when Retries allows. Zero (the
// default) disables the bound.
func RunTimeout(d time.Duration) Option {
	return func(e *Engine) { e.runTimeout = d }
}

// Retries allows up to n extra attempts for transiently-failed points
// (currently: wall-clock deadline expiries), with linear backoff between
// attempts. Deterministic failures — self-check trips, watchdog expiries,
// validation errors, panics — are never retried.
func Retries(n int) Option {
	if n < 0 {
		n = 0
	}
	return func(e *Engine) { e.retries = n }
}

// ContinueOnError keeps the campaign draining after a point fails: the
// remaining points still execute and the failure is reported at the end (or
// per point, via RunAll). The default is fail-fast — the first failure
// cancels pending points and promptly aborts in-flight simulations through
// their stop channels.
func ContinueOnError() Option {
	return func(e *Engine) { e.keepGoing = true }
}

// WithCheckpoint attaches a checkpoint: points whose fingerprint it already
// holds are served from it, and every newly completed simulation is
// appended to it. The caller owns the checkpoint's lifetime (Close it after
// the campaign).
func WithCheckpoint(cp *Checkpoint) Option {
	return func(e *Engine) { e.cp = cp }
}

// CacheBound bounds the memo cache to at most n entries. When an insertion
// would exceed the bound, the oldest-inserted completed entries are evicted
// first — deterministic FIFO, so a campaign replayed against a bounded
// engine hits and misses identically every time. In-flight entries are
// never evicted (waiters hold their done channels), so the cache may
// transiently exceed n while more than n runs are in flight. Zero or
// negative n (the default) leaves the cache unbounded.
func CacheBound(n int) Option {
	if n < 0 {
		n = 0
	}
	return func(e *Engine) { e.cacheBound = n }
}

// entry is one memoized (or in-flight) simulation.
type entry struct {
	res  sim.Results
	err  error
	done chan struct{} // closed once res/err are valid
}

// resolved reports whether the entry's run has finished (done closed). It
// is safe to call from any goroutine.
func (en *entry) resolved() bool {
	select {
	case <-en.done:
		return true
	default:
		return false
	}
}

// cacheRecord is one memo-cache insertion, in order, for FIFO eviction.
// The entry pointer distinguishes a fingerprint's current cache entry from
// a stale record left behind when a failed run uncached and a later
// campaign re-inserted the same fingerprint.
type cacheRecord struct {
	fp string
	en *entry
}

// arena is a worker's persistent machine slot: one reusable simulation
// arena (caches, MSHRs, pipeline, recorder buffers, pooled transactions)
// that consecutive memo-missed runs reset in place instead of
// reallocating. An arena belongs to exactly one worker goroutine at a
// time; between campaigns it parks in the process-wide pool.
type arena struct {
	m *sim.Machine
}

// arenaPool recycles machine arenas across engines, not just campaigns:
// Machine.Reset is geometry-aware and bit-identical to fresh construction
// under any configuration, so an arena is config-agnostic and a short-lived
// engine (one figure, one CLI invocation, one test) can inherit the
// machines a previous engine built. A plain bounded free list rather than
// sync.Pool: pooled machines must survive GC cycles (a cleared pool would
// silently reintroduce full construction cost mid-campaign), and the cap
// bounds pinned simulation memory to one arena per plausible worker.
var arenaPool = newArenaFreeList()

type arenaFreeList struct {
	mu   sync.Mutex
	free []*arena
	cap  int
}

func newArenaFreeList() *arenaFreeList {
	c := runtime.GOMAXPROCS(0)
	// Engines may run more workers than cores (the oversubscribed regime
	// still overlaps memory stalls), so keep a sensible floor.
	if c < 16 {
		c = 16
	}
	return &arenaFreeList{cap: c}
}

func (p *arenaFreeList) get() *arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	return &arena{}
}

func (p *arenaFreeList) put(a *arena) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.cap {
		p.free = append(p.free, a)
	}
}

// Engine executes sweep points with bounded parallelism and a memoization
// cache that persists across campaigns. An Engine is safe for concurrent
// use; concurrent campaigns share its cache (duplicate in-flight points are
// joined, not re-run).
type Engine struct {
	workers    int
	progress   func(Progress)
	noCache    bool
	cacheBound int
	runTimeout time.Duration
	retries    int
	backoff    time.Duration
	keepGoing  bool
	cp         *Checkpoint

	mu    sync.Mutex
	cache map[string]*entry
	order []cacheRecord // insertion order, for CacheBound eviction
	stats Stats
}

// New returns an engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		backoff: 50 * time.Millisecond,
		cache:   make(map[string]*entry),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Stats returns a snapshot of the engine's lifetime counters (every job's
// counters summed).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// CacheLen returns how many fingerprints the memo cache currently holds
// (completed or in flight).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// cacheAdd inserts an entry under the bound policy. Caller holds e.mu.
func (e *Engine) cacheAdd(fp string, en *entry) {
	e.cache[fp] = en
	if e.cacheBound > 0 {
		e.order = append(e.order, cacheRecord{fp: fp, en: en})
		e.evictLocked()
	}
}

// evictLocked enforces the CacheBound: while the cache is over its bound it
// drops the oldest-inserted resolved entries, skipping (and preserving the
// relative order of) in-flight ones. Stale records — fingerprints already
// uncached by a failure, or re-inserted under a newer entry — are compacted
// away as they are encountered. Caller holds e.mu.
func (e *Engine) evictLocked() {
	if e.cacheBound <= 0 || len(e.cache) <= e.cacheBound {
		return
	}
	kept := e.order[:0]
	for i, rec := range e.order {
		if len(e.cache) <= e.cacheBound {
			kept = append(kept, e.order[i:]...)
			break
		}
		if cur, ok := e.cache[rec.fp]; !ok || cur != rec.en {
			continue // stale record; nothing to evict
		}
		if !rec.en.resolved() {
			kept = append(kept, rec) // never evict an in-flight run
			continue
		}
		delete(e.cache, rec.fp)
		e.stats.Evicted++
	}
	e.order = kept
}

// acquireArena hands a worker its machine slot, recycling a parked arena
// when one is available. Each worker holds exactly one arena for the span
// of a campaign, so an engine never pins more than one arena's simulation
// memory per configured worker.
func (e *Engine) acquireArena() *arena {
	return arenaPool.get()
}

// releaseArena parks a worker's arena in the process-wide pool for the
// next campaign — on this engine or any other. Arenas whose machine was
// dropped (unstructured panic, failed reset) are not parked; the next
// acquirer builds fresh.
func (e *Engine) releaseArena(a *arena) {
	if a.m == nil {
		return
	}
	arenaPool.put(a)
}

// Job is one campaign's scoped view of an engine: it shares the engine's
// worker pool, memo cache and checkpoint, but owns its progress callback,
// its Stats and its run budget, so concurrent jobs on one engine do not
// interleave counters or callbacks. The zero value is not usable; call
// Engine.NewJob. A Job is safe for concurrent use (a job running several
// campaigns concurrently aggregates them into one set of counters).
type Job struct {
	e         *Engine
	progress  func(Progress)
	maxPoints int

	// stats is guarded by e.mu (job counters are updated on the same
	// paths, under the same critical sections, as the engine's).
	stats Stats
}

// JobOption configures a Job.
type JobOption func(*Job)

// JobProgress installs the job's progress callback, overriding the
// engine-level default. Same calling convention as OnProgress.
func JobProgress(fn func(Progress)) JobOption {
	return func(j *Job) { j.progress = fn }
}

// MaxPoints caps how many points the job may submit across all of its
// RunAll calls — the admission-control run budget. A call that would exceed
// the budget fails as a whole with a *BudgetError before simulating
// anything. Zero (the default) disables the cap.
func MaxPoints(n int) JobOption {
	if n < 0 {
		n = 0
	}
	return func(j *Job) { j.maxPoints = n }
}

// NewJob returns a job-scoped handle on the engine. Jobs inherit the
// engine's default progress callback unless JobProgress overrides it.
func (e *Engine) NewJob(opts ...JobOption) *Job {
	j := &Job{e: e, progress: e.progress}
	for _, o := range opts {
		o(j)
	}
	return j
}

// Stats returns a snapshot of the job's counters.
func (j *Job) Stats() Stats {
	j.e.mu.Lock()
	defer j.e.mu.Unlock()
	return j.stats
}

// runItem is one simulation scheduled by a RunAll call.
type runItem struct {
	fp string
	p  Point
	en *entry
}

// PointResult is one point's outcome in a RunAll campaign: its results, or
// the error that prevented them (a *RunError for genuine failures, a
// cancellation error for points dropped by fail-fast or the caller's
// context).
type PointResult struct {
	Key string
	Res sim.Results
	Err error
}

// RunAll is the engine's primitive: it executes the points and returns
// every point's individual outcome in submission order — the
// graceful-degradation interface. With ContinueOnError, a campaign with
// failing points still yields results for every point that could run, each
// failure annotated in place; the default is fail-fast (the first genuine
// failure cancels pending points, which report cancellation errors). The
// returned error is only non-nil for planning problems (unhashable
// configurations, an exceeded run budget) — per-point failures live in the
// PointResults.
func (j *Job) RunAll(ctx context.Context, points []Point) ([]PointResult, error) {
	waiters, err := j.execute(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make([]PointResult, len(points))
	for i, en := range waiters {
		<-en.done
		out[i] = PointResult{Key: points[i].Key, Res: en.res, Err: en.err}
	}
	return out, nil
}

// Run is a thin wrapper over RunAll for all-or-nothing campaigns: it
// returns just the results, in submission order, or the first genuine
// failure (a *RunError, in submission order). Cancellations are reported
// only when no genuine failure explains them.
func (j *Job) Run(ctx context.Context, points []Point) ([]sim.Results, error) {
	all, err := j.RunAll(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Results, len(points))
	var cancelErr error
	for i, pr := range all {
		switch {
		case pr.Err == nil:
			out[i] = pr.Res
		case isCancel(pr.Err):
			if cancelErr == nil {
				cancelErr = fmt.Errorf("sweep: point %q: %w", points[i].Key, pr.Err)
			}
		default:
			return nil, pr.Err
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}

// RunMap is a thin wrapper over Run that keys the results by Point.Key.
func (j *Job) RunMap(ctx context.Context, points []Point) (map[string]sim.Results, error) {
	res, err := j.Run(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Results, len(points))
	for i, p := range points {
		out[p.Key] = res[i]
	}
	return out, nil
}

// RunAll executes the points on an anonymous job (engine-default progress,
// no budget). See Job.RunAll.
func (e *Engine) RunAll(ctx context.Context, points []Point) ([]PointResult, error) {
	return e.NewJob().RunAll(ctx, points)
}

// Run executes the points on an anonymous job. See Job.Run.
func (e *Engine) Run(ctx context.Context, points []Point) ([]sim.Results, error) {
	return e.NewJob().Run(ctx, points)
}

// RunMap executes the points on an anonymous job. See Job.RunMap.
func (e *Engine) RunMap(ctx context.Context, points []Point) (map[string]sim.Results, error) {
	return e.NewJob().RunMap(ctx, points)
}

// execute plans the campaign and fans it out over the worker pool,
// returning each point's entry (resolved or in flight).
func (j *Job) execute(ctx context.Context, points []Point) ([]*entry, error) {
	e := j.e
	// Plan sequentially: map each point to its cache entry, creating
	// entries for the runs this call owns. Hit accounting happens here, in
	// submission order, so it is deterministic for any worker count.
	waiters := make([]*entry, len(points))
	var toRun []runItem
	hits := 0
	e.mu.Lock()
	if j.maxPoints > 0 && j.stats.Points+len(points) > j.maxPoints {
		submitted := j.stats.Points
		e.mu.Unlock()
		return nil, &BudgetError{Submitted: submitted, Requested: len(points), Budget: j.maxPoints}
	}
	e.stats.Points += len(points)
	j.stats.Points += len(points)
	for i, p := range points {
		fp, err := p.Fingerprint()
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("sweep: point %q: %w", p.Key, err)
		}
		if !e.noCache {
			if en, ok := e.cache[fp]; ok {
				e.stats.CacheHits++
				j.stats.CacheHits++
				hits++
				waiters[i] = en
				continue
			}
		}
		if e.cp != nil {
			if res, ok := e.cp.Lookup(fp); ok {
				en := &entry{res: res, done: make(chan struct{})}
				close(en.done)
				if !e.noCache {
					e.cacheAdd(fp, en)
				}
				e.stats.CheckpointHits++
				j.stats.CheckpointHits++
				hits++
				waiters[i] = en
				continue
			}
		}
		en := &entry{done: make(chan struct{})}
		if !e.noCache {
			e.cacheAdd(fp, en)
		}
		waiters[i] = en
		toRun = append(toRun, runItem{fp: fp, p: p, en: en})
	}
	e.mu.Unlock()

	// runCtx is the campaign's cancellation scope: it follows the caller's
	// context and, under fail-fast, is cancelled on the first genuine point
	// failure. Its Done channel is threaded into every simulation as the
	// stop channel, so in-flight runs abort within a few thousand ticks.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	// Fan the owned runs out over the worker pool. Workers drain the whole
	// channel even after cancellation, failing (and uncaching) the items
	// they skip, so every entry's done channel is guaranteed to close.
	start := time.Now()
	jobs := make(chan runItem)
	var wg sync.WaitGroup
	done := 0
	var progMu sync.Mutex
	note := func(it runItem, dur time.Duration) {
		e.mu.Lock()
		// The entry just resolved; entries inserted in-flight become
		// evictable only now, so re-enforce the cache bound here.
		e.evictLocked()
		e.stats.Ran++
		e.stats.SimTime += dur
		if dur > e.stats.WorstRun {
			e.stats.WorstRun = dur
			e.stats.WorstKey = it.p.Key
		}
		j.stats.Ran++
		j.stats.SimTime += dur
		if dur > j.stats.WorstRun {
			j.stats.WorstRun = dur
			j.stats.WorstKey = it.p.Key
		}
		worst, worstKey := j.stats.WorstRun, j.stats.WorstKey
		e.mu.Unlock()
		if j.progress == nil {
			return
		}
		progMu.Lock()
		done++
		p := Progress{
			Done:       hits + done,
			Total:      len(points),
			CacheHits:  hits,
			SimsPerSec: float64(done) / time.Since(start).Seconds(),
			WorstRun:   worst,
			WorstKey:   worstKey,
		}
		j.progress(p)
		progMu.Unlock()
	}
	workers := e.workers
	if workers > len(toRun) {
		workers = len(toRun)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker holds one persistent machine slot for its
			// lifetime: consecutive memo-missed runs reset the same arena
			// in place. Between campaigns the arena parks in the engine
			// pool, so reuse carries across RunAll calls too.
			a := e.acquireArena()
			defer e.releaseArena(a)
			for it := range jobs {
				if runCtx.Err() != nil {
					j.fail(it, runCtx.Err(), false)
					continue
				}
				t0 := time.Now()
				res, err := j.runPoint(runCtx, it, a)
				if err != nil {
					genuine := !isCancel(err)
					j.fail(it, err, genuine)
					if genuine && !e.keepGoing {
						cancelRun()
					}
					continue
				}
				if e.cp != nil {
					if cerr := e.cp.add(it.fp, it.p.Key, res); cerr != nil {
						// A result that cannot be checkpointed breaks the
						// resume guarantee; fail the point rather than
						// silently degrade.
						j.fail(it, fmt.Errorf("sweep: checkpoint write: %w", cerr), true)
						if !e.keepGoing {
							cancelRun()
						}
						continue
					}
				}
				it.en.res = res
				close(it.en.done)
				note(it, time.Since(t0))
			}
		}()
	}
	for _, it := range toRun {
		jobs <- it
	}
	close(jobs)
	wg.Wait()
	return waiters, nil
}

// runPoint executes one point with panic isolation, the per-run deadline,
// and bounded retry of transient failures, on the worker's arena.
func (j *Job) runPoint(ctx context.Context, it runItem, a *arena) (sim.Results, error) {
	e := j.e
	attempt := 0
	for {
		attempt++
		res, err := j.runOnce(ctx, it.p, a)
		if err == nil {
			return res, nil
		}
		var ce *sim.CheckError
		if errors.As(err, &ce) && ce.Kind == sim.FailAborted {
			// Stopped through the stop channel: a cancellation, not a
			// failure of this point.
			if cerr := ctx.Err(); cerr != nil {
				return sim.Results{}, cerr
			}
			return sim.Results{}, context.Canceled
		}
		if attempt <= e.retries && transient(err) && ctx.Err() == nil {
			e.mu.Lock()
			e.stats.Retried++
			j.stats.Retried++
			e.mu.Unlock()
			time.Sleep(time.Duration(attempt) * e.backoff)
			continue
		}
		re := &RunError{
			Key:         it.p.Key,
			Benchmark:   it.p.Benchmark,
			Seed:        it.p.Seed,
			Fingerprint: it.fp,
			Attempts:    attempt,
			Err:         err,
		}
		var pe *panicError
		if errors.As(err, &pe) {
			re.Stack = pe.stack
		}
		return sim.Results{}, re
	}
}

// runOnce executes one attempt on the worker's arena, converting panics —
// the simulator's structured failures and anything else — into errors. The
// arena's machine is reset in place when present (the steady-state path:
// zero arena allocation) and constructed on first use. A structured
// failure leaves the arena reusable — Machine.Reset restores a
// bit-identical fresh machine from any mid-run state — but an unstructured
// panic or a failed reset drops it, since its invariants are unknown.
//
//vsv:hotpath
func (j *Job) runOnce(ctx context.Context, p Point, a *arena) (res sim.Results, err error) {
	e := j.e
	//vsvlint:ignore hotpath the panic-recovery boundary must be a deferred function literal; one closure per attempt, amortized against the whole run
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ce, ok := r.(*sim.CheckError); ok {
			err = ce
			return
		}
		a.m = nil
		err = &panicError{value: r, stack: debug.Stack()}
	}()
	opts := []sim.Option{
		sim.WithConfig(p.Config), sim.WithSeed(p.Seed), sim.WithStop(ctx.Done()),
	}
	if e.runTimeout > 0 {
		opts = append(opts, sim.WithWallDeadline(time.Now().Add(e.runTimeout)))
	}
	reused := a.m != nil
	if reused {
		if err := a.m.ResetBench(p.Benchmark, opts...); err != nil {
			a.m = nil
			return sim.Results{}, err
		}
	} else {
		m, err := sim.NewBench(p.Benchmark, opts...)
		if err != nil {
			return sim.Results{}, err
		}
		a.m = m
	}
	e.mu.Lock()
	if reused {
		e.stats.ArenaReuses++
		j.stats.ArenaReuses++
	} else {
		e.stats.FreshBuilds++
		j.stats.FreshBuilds++
	}
	e.mu.Unlock()
	return a.m.Run(p.Benchmark), nil
}

// fail marks an entry as errored and removes it from the cache so a later
// campaign re-executes the point; genuine failures (not cancellations) are
// counted.
func (j *Job) fail(it runItem, err error, genuine bool) {
	e := j.e
	e.mu.Lock()
	delete(e.cache, it.fp)
	if genuine {
		e.stats.Failed++
		j.stats.Failed++
	}
	e.mu.Unlock()
	it.en.err = err
	close(it.en.done)
}
