// Package sweep is the batch simulation engine behind every campaign: it
// takes a set of (benchmark × configuration) points, executes them on a
// bounded worker pool with context cancellation, and memoizes completed
// runs under a stable configuration hash so points repeated across
// experiments (for example the shared baselines of Figures 4–7) are
// simulated exactly once. Results come back in submission order regardless
// of scheduling, so campaign output is byte-identical for any worker count.
//
// Work is scoped in two layers. The Engine owns the shared, contended
// resources — the worker pool, its reusable machine arenas, the
// fingerprint-keyed memo cache and the optional checkpoint or ledger — and
// survives across campaigns. Each worker holds a persistent machine slot,
// so consecutive memo-missed runs recycle one arena in place
// (Machine.Reset) instead of reallocating tens of megabytes of simulator
// state per point. A Job (NewJob) is one campaign's view of the engine: it
// carries its own progress callback and its own Stats, so two jobs running
// concurrently on one engine share the cache without interleaving each
// other's counters. RunAll is the primitive (every point's individual
// outcome, in submission order); Run and RunMap are thin wrappers over it.
//
// The shared state is engineered to scale with worker count. The memo
// cache is lock-striped into power-of-two shards keyed by the run
// fingerprint, so concurrent campaigns contend per shard, not on one
// global mutex; eviction under CacheBound stays deterministic FIFO within
// each shard. The per-run hot counters (runs, simulation time, arena
// reuse) live in padded per-worker slots that are only summed when Stats
// is called, so workers never bounce a shared cache line, and run items
// are claimed from an atomic cursor instead of a channel, so one worker
// can burn through a contiguous span of points with its arena hot in
// cache.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/sim"
)

// Point is one simulation of a campaign: a benchmark (and workload seed)
// on a machine configuration.
type Point struct {
	// Key labels the point in the caller's result map. It has no effect on
	// execution or memoization.
	Key string
	// Benchmark names the synthetic SPEC2K workload.
	Benchmark string
	// Seed selects the workload's pseudo-random streams (0 = canonical).
	Seed uint64
	// Config is the full machine configuration.
	Config sim.Config
}

// Stats aggregates counters across Run calls. Engine.Stats returns the
// engine's lifetime totals (every job summed); Job.Stats returns one job's
// share.
type Stats struct {
	// Points counts every submitted point; Ran counts the simulations that
	// actually executed; CacheHits counts points satisfied by a memoized
	// (or in-flight duplicate) run. For all-success campaigns,
	// Points == Ran + CacheHits + CheckpointHits + LedgerHits.
	Points, Ran, CacheHits int
	// CheckpointHits counts points satisfied from the attached checkpoint
	// file (completed in an earlier process lifetime).
	CheckpointHits int
	// LedgerHits counts points satisfied from the attached work-stealing
	// ledger (completed by another worker process); Steals counts expired
	// foreign claims this engine took over.
	LedgerHits, Steals int
	// Failed counts points that genuinely failed (cancellations are not
	// failures); Retried counts extra attempts spent on transient failures.
	Failed, Retried int
	// ArenaReuses counts executed simulations that recycled a worker's
	// machine arena in place (Machine.ResetBench); FreshBuilds counts the
	// ones that had to construct a machine. ArenaReuses + FreshBuilds is the
	// number of run attempts (Ran plus retries).
	ArenaReuses, FreshBuilds int
	// Evicted counts memo-cache entries dropped by the CacheBound policy
	// (summed across shards).
	Evicted int
	// SimTime is the summed wall time of executed simulations; WorstRun is
	// the longest single simulation and WorstKey its point key.
	SimTime  time.Duration
	WorstRun time.Duration
	WorstKey string
}

// RunsPerSec returns executed simulations per second of simulation wall
// time — the engine's throughput over the work it actually did, independent
// of idle periods between campaigns. Zero until something has run.
func (s Stats) RunsPerSec() float64 {
	if s.SimTime <= 0 {
		return 0
	}
	return float64(s.Ran) / s.SimTime.Seconds()
}

// ReuseRate returns the fraction of run attempts that recycled a worker
// arena instead of constructing a machine (0 when nothing has run).
func (s Stats) ReuseRate() float64 {
	attempts := s.ArenaReuses + s.FreshBuilds
	if attempts == 0 {
		return 0
	}
	return float64(s.ArenaReuses) / float64(attempts)
}

// Progress is a point-in-time snapshot delivered to the progress callback
// after every completed simulation of a RunAll call.
type Progress struct {
	// Done and Total count points of the current RunAll call; CacheHits is
	// how many of Done were served from the memo cache.
	Done, Total, CacheHits int
	// SimsPerSec is executed simulations per wall-clock second since the
	// RunAll call started.
	SimsPerSec float64
	// WorstRun and WorstKey identify the slowest simulation so far (across
	// the owning job's lifetime).
	WorstRun time.Duration
	WorstKey string
}

// Option configures an Engine.
type Option func(*Engine)

// Workers bounds concurrent simulations (minimum 1). The default is
// runtime.GOMAXPROCS(0).
func Workers(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(e *Engine) { e.workers = n }
}

// OnProgress installs the engine's default progress callback, inherited by
// every job that does not set its own (JobProgress). It is invoked from
// worker goroutines (serialized per RunAll call, but concurrent with the
// caller), so it must be safe to call from another goroutine.
func OnProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithoutCache disables memoization: every point runs, even duplicates.
func WithoutCache() Option {
	return func(e *Engine) { e.noCache = true }
}

// RunTimeout bounds each simulation's wall-clock time. A run past its
// deadline fails with a structured *sim.CheckError of kind FailDeadline —
// classified transient, so it is retried when Retries allows. Zero (the
// default) disables the bound.
func RunTimeout(d time.Duration) Option {
	return func(e *Engine) { e.runTimeout = d }
}

// Retries allows up to n extra attempts for transiently-failed points
// (currently: wall-clock deadline expiries), with linear backoff between
// attempts. Deterministic failures — self-check trips, watchdog expiries,
// validation errors, panics — are never retried.
func Retries(n int) Option {
	if n < 0 {
		n = 0
	}
	return func(e *Engine) { e.retries = n }
}

// ContinueOnError keeps the campaign draining after a point fails: the
// remaining points still execute and the failure is reported at the end (or
// per point, via RunAll). The default is fail-fast — the first failure
// cancels pending points and promptly aborts in-flight simulations through
// their stop channels.
func ContinueOnError() Option {
	return func(e *Engine) { e.keepGoing = true }
}

// WithCheckpoint attaches a checkpoint: points whose fingerprint it already
// holds are served from it, and every newly completed simulation is
// appended to it. The caller owns the checkpoint's lifetime (Close it after
// the campaign).
func WithCheckpoint(cp *Checkpoint) Option {
	return func(e *Engine) { e.cp = cp }
}

// WithLedger attaches a multi-writer work-stealing ledger: completed
// points are served from it, unclaimed points are claimed before they run
// (and completed into it afterwards), and points claimed by another live
// worker process are waited for — or stolen once the claim's deadline
// expires. The caller owns the ledger's lifetime. See Ledger.
func WithLedger(l *Ledger) Option {
	return func(e *Engine) { e.led = l }
}

// CacheBound bounds the memo cache to at most n entries. When an insertion
// would exceed a shard's share of the bound, that shard's oldest-inserted
// completed entries are evicted first — deterministic FIFO per shard, so a
// campaign replayed against a bounded engine hits and misses identically
// every time. In-flight entries are never evicted (waiters hold their done
// channels), so the cache may transiently exceed n while more than n runs
// are in flight. Zero or negative n (the default) leaves the cache
// unbounded. Small bounds use a single shard, so the historical global
// FIFO order is preserved exactly; sharding begins once every shard can
// hold at least a few entries.
func CacheBound(n int) Option {
	if n < 0 {
		n = 0
	}
	return func(e *Engine) { e.cacheBound = n }
}

// entry is one memoized (or in-flight) simulation.
type entry struct {
	res  sim.Results
	err  error
	done chan struct{} // closed once res/err are valid
}

// resolved reports whether the entry's run has finished (done closed). It
// is safe to call from any goroutine.
func (en *entry) resolved() bool {
	select {
	case <-en.done:
		return true
	default:
		return false
	}
}

// cacheRecord is one memo-cache insertion, in order, for FIFO eviction.
// The entry pointer distinguishes a fingerprint's current cache entry from
// a stale record left behind when a failed run uncached and a later
// campaign re-inserted the same fingerprint.
type cacheRecord struct {
	fp string
	en *entry
}

// maxCacheShards bounds the lock striping of the memo cache. Shard count
// is always a power of two so the fingerprint maps to a shard with a mask.
const maxCacheShards = 16

// cacheShard is one lock stripe of the memo cache: its own map, its own
// FIFO insertion order and its own slice of the engine's CacheBound.
// Everything under sh.mu.
type cacheShard struct {
	// mu is held for map/slice bookkeeping only — never across I/O or a
	// channel. //vsv:hotlock
	mu      sync.Mutex
	cache   map[string]*entry
	order   []cacheRecord // insertion order, for bound eviction
	bound   int           // this shard's share of the engine bound (0 = unbounded)
	evicted int
	// pad keeps neighbouring shards off one cache line so shard locks do
	// not false-share (fields above are 56 bytes; 56+72 = 128).
	_ [72]byte
}

// addLocked inserts an entry under the shard's bound policy. Caller holds
// sh.mu.
func (sh *cacheShard) addLocked(fp string, en *entry) {
	sh.cache[fp] = en
	if sh.bound > 0 {
		sh.order = append(sh.order, cacheRecord{fp: fp, en: en})
		sh.evictLocked()
	}
}

// evictLocked enforces the shard's bound: while the shard is over it, the
// oldest-inserted resolved entries are dropped, skipping (and preserving
// the relative order of) in-flight ones. Stale records — fingerprints
// already uncached by a failure, or re-inserted under a newer entry — are
// compacted away as they are encountered. Caller holds sh.mu.
func (sh *cacheShard) evictLocked() {
	if sh.bound <= 0 || len(sh.cache) <= sh.bound {
		return
	}
	kept := sh.order[:0]
	for i, rec := range sh.order {
		if len(sh.cache) <= sh.bound {
			kept = append(kept, sh.order[i:]...)
			break
		}
		if cur, ok := sh.cache[rec.fp]; !ok || cur != rec.en {
			continue // stale record; nothing to evict
		}
		if !rec.en.resolved() {
			kept = append(kept, rec) // never evict an in-flight run
			continue
		}
		delete(sh.cache, rec.fp)
		sh.evicted++
	}
	sh.order = kept
}

// shardCount picks the cache's stripe width. Unbounded caches stripe to
// the maximum. Bounded caches stripe only as far as keeps at least four
// entries per shard — and a small bound therefore collapses to one shard,
// preserving the exact historical global-FIFO eviction order that the
// bound semantics were specified (and tested) under.
func shardCount(bound int) int {
	if bound <= 0 {
		return maxCacheShards
	}
	n := 1
	for n*2 <= bound/4 && n*2 <= maxCacheShards {
		n *= 2
	}
	return n
}

// shardIndex maps a fingerprint (lowercase hex, as produced by
// Point.Fingerprint) to its shard: the first fingerprint byte masked by
// the power-of-two shard count. SHA-256 output is uniform, so shards load
// evenly; the mapping is pure, so every process sharding the same
// fingerprint space agrees on shard ownership.
func shardIndex(fp string, n int) int {
	if n <= 1 || len(fp) < 2 {
		return 0
	}
	return int(hexVal(fp[0])<<4|hexVal(fp[1])) & (n - 1)
}

// ShardOwner partitions the fingerprint space across n cooperating
// processes (not necessarily a power of two): the peer index that owns the
// fingerprint. Every process given the same n computes the same owner, so
// a sharded deployment routes a point to one home deterministically. The
// cache's internal shardIndex and ShardOwner both key off the fingerprint's
// leading byte, so a peer's local cache shards stay evenly loaded under
// peer-sliced traffic.
func ShardOwner(fp string, n int) int {
	if n <= 1 || len(fp) < 2 {
		return 0
	}
	return int(hexVal(fp[0])<<4|hexVal(fp[1])) % n
}

func hexVal(c byte) uint {
	switch {
	case c >= '0' && c <= '9':
		return uint(c - '0')
	case c >= 'a' && c <= 'f':
		return uint(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return uint(c-'A') + 10
	}
	return 0
}

// hotSlot is one worker's private share of the engine's hot counters,
// padded so neighbouring workers' slots never share a cache line. Workers
// add to their own slot with uncontended atomics; Stats sums the slots.
// Two campaigns running concurrently on one job may share a slot index,
// so the adds stay atomic rather than plain stores.
type hotSlot struct {
	ran         atomic.Int64
	simTimeNS   atomic.Int64
	arenaReuses atomic.Int64
	freshBuilds atomic.Int64
	_           [96]byte
}

// addInto folds the slot into a Stats aggregate.
func (h *hotSlot) addInto(s *Stats) {
	s.Ran += int(h.ran.Load())
	s.SimTime += time.Duration(h.simTimeNS.Load())
	s.ArenaReuses += int(h.arenaReuses.Load())
	s.FreshBuilds += int(h.freshBuilds.Load())
}

// worstTracker tracks the slowest run and its key. The fast path is one
// atomic load (almost always "not a new worst"); the mutex is taken only
// to install a new maximum.
type worstTracker struct {
	ns atomic.Int64
	// mu is taken only to install a new maximum. //vsv:hotlock
	mu  sync.Mutex
	key string
}

func (w *worstTracker) note(d time.Duration, key string) {
	if d.Nanoseconds() <= w.ns.Load() {
		return
	}
	w.mu.Lock()
	if d.Nanoseconds() > w.ns.Load() {
		w.ns.Store(d.Nanoseconds())
		w.key = key
	}
	w.mu.Unlock()
}

func (w *worstTracker) get() (time.Duration, string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Duration(w.ns.Load()), w.key
}

// arena is a worker's persistent machine slot: one reusable simulation
// arena (caches, MSHRs, pipeline, recorder buffers, pooled transactions)
// that consecutive memo-missed runs reset in place instead of
// reallocating. An arena belongs to exactly one worker goroutine at a
// time; between campaigns it parks in the process-wide pool.
type arena struct {
	m *sim.Machine
}

// arenaPool recycles machine arenas across engines, not just campaigns:
// Machine.Reset is geometry-aware and bit-identical to fresh construction
// under any configuration, so an arena is config-agnostic and a short-lived
// engine (one figure, one CLI invocation, one test) can inherit the
// machines a previous engine built. A plain bounded free list rather than
// sync.Pool: pooled machines must survive GC cycles (a cleared pool would
// silently reintroduce full construction cost mid-campaign), and the cap
// bounds pinned simulation memory to one arena per plausible worker. The
// list is striped by worker index so concurrent campaign starts and ends
// do not serialize on one mutex; a worker prefers its own stripe (the
// arena it parked last time, still warm) and steals from neighbours only
// when its stripe is empty.
var arenaPool = newArenaFreeList()

// arenaStripes is the free list's stripe count (power of two).
const arenaStripes = 8

type arenaStripe struct {
	// mu guards the free list only. //vsv:hotlock
	mu   sync.Mutex
	free []*arena
	// fields above are 32 bytes; 32+32 = 64 keeps stripes one line apart.
	_ [32]byte
}

type arenaFreeList struct {
	stripes [arenaStripes]arenaStripe
	perCap  int // bound per stripe, so total pinned memory stays bounded
}

func newArenaFreeList() *arenaFreeList {
	c := runtime.GOMAXPROCS(0)
	// Engines may run more workers than cores (the oversubscribed regime
	// still overlaps memory stalls), so keep a sensible floor.
	if c < 16 {
		c = 16
	}
	return &arenaFreeList{perCap: (c + arenaStripes - 1) / arenaStripes}
}

func (p *arenaFreeList) get(w int) *arena {
	idx := w & (arenaStripes - 1)
	for i := 0; i < arenaStripes; i++ {
		s := &p.stripes[(idx+i)&(arenaStripes-1)]
		s.mu.Lock()
		if n := len(s.free); n > 0 {
			a := s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
			s.mu.Unlock()
			return a
		}
		s.mu.Unlock()
	}
	return &arena{}
}

func (p *arenaFreeList) put(w int, a *arena) {
	idx := w & (arenaStripes - 1)
	for i := 0; i < arenaStripes; i++ {
		s := &p.stripes[(idx+i)&(arenaStripes-1)]
		s.mu.Lock()
		if len(s.free) < p.perCap {
			s.free = append(s.free, a)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
	// Every stripe is at capacity: drop the arena; the GC reclaims it.
}

// Engine executes sweep points with bounded parallelism and a memoization
// cache that persists across campaigns. An Engine is safe for concurrent
// use; concurrent campaigns share its cache (duplicate in-flight points are
// joined, not re-run).
type Engine struct {
	workers    int
	progress   func(Progress)
	noCache    bool
	cacheBound int
	runTimeout time.Duration
	retries    int
	backoff    time.Duration
	keepGoing  bool
	cp         *Checkpoint
	led        *Ledger

	// shards is the lock-striped memo cache (power-of-two length).
	shards []cacheShard
	// hot is the per-worker counter block; worker w owns hot[w].
	hot   []hotSlot
	worst worstTracker

	// mu guards the cold counters in stats (planning-path hits, failures,
	// retries) and every job's cold counters; the hot per-run counters
	// live in the padded slots above. //vsv:hotlock
	mu    sync.Mutex
	stats Stats
}

// New returns an engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(e)
	}
	n := shardCount(e.cacheBound)
	e.shards = make([]cacheShard, n)
	for i := range e.shards {
		e.shards[i].cache = make(map[string]*entry)
		if e.cacheBound > 0 {
			// Split the bound evenly; the first bound%n shards absorb the
			// remainder so the shard bounds sum exactly to the engine bound.
			e.shards[i].bound = e.cacheBound / n
			if i < e.cacheBound%n {
				e.shards[i].bound++
			}
		}
	}
	e.hot = make([]hotSlot, e.workers)
	return e
}

// shard returns the cache shard owning the fingerprint.
func (e *Engine) shard(fp string) *cacheShard {
	return &e.shards[shardIndex(fp, len(e.shards))]
}

// Stats returns a snapshot of the engine's lifetime counters (every job's
// counters summed).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	for i := range e.hot {
		e.hot[i].addInto(&s)
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		s.Evicted += sh.evicted
		sh.mu.Unlock()
	}
	s.WorstRun, s.WorstKey = e.worst.get()
	return s
}

// CacheLen returns how many fingerprints the memo cache currently holds
// (completed or in flight), summed across shards.
func (e *Engine) CacheLen() int {
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += len(sh.cache)
		sh.mu.Unlock()
	}
	return n
}

// CacheShards returns the memo cache's shard count.
func (e *Engine) CacheShards() int { return len(e.shards) }

// ShardLens returns each shard's current entry count, in shard order.
func (e *Engine) ShardLens() []int {
	out := make([]int, len(e.shards))
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.cache)
		sh.mu.Unlock()
	}
	return out
}

// acquireArena hands a worker its machine slot, recycling a parked arena
// when one is available. Each worker holds exactly one arena for the span
// of a campaign, so an engine never pins more than one arena's simulation
// memory per configured worker.
func (e *Engine) acquireArena(w int) *arena {
	return arenaPool.get(w)
}

// releaseArena parks a worker's arena in the process-wide pool for the
// next campaign — on this engine or any other. Arenas whose machine was
// dropped (unstructured panic, failed reset) are not parked; the next
// acquirer builds fresh.
func (e *Engine) releaseArena(w int, a *arena) {
	if a.m == nil {
		return
	}
	arenaPool.put(w, a)
}

// Job is one campaign's scoped view of an engine: it shares the engine's
// worker pool, memo cache and checkpoint, but owns its progress callback,
// its Stats and its run budget, so concurrent jobs on one engine do not
// interleave counters or callbacks. The zero value is not usable; call
// Engine.NewJob. A Job is safe for concurrent use (a job running several
// campaigns concurrently aggregates them into one set of counters).
type Job struct {
	e         *Engine
	progress  func(Progress)
	maxPoints int

	// stats holds the job's cold counters, guarded by e.mu (updated on the
	// same paths, under the same critical sections, as the engine's); the
	// hot per-run counters live in the job's own per-worker slots.
	stats Stats
	hot   []hotSlot
	worst worstTracker
}

// JobOption configures a Job.
type JobOption func(*Job)

// JobProgress installs the job's progress callback, overriding the
// engine-level default. Same calling convention as OnProgress.
func JobProgress(fn func(Progress)) JobOption {
	return func(j *Job) { j.progress = fn }
}

// MaxPoints caps how many points the job may submit across all of its
// RunAll calls — the admission-control run budget. A call that would exceed
// the budget fails as a whole with a *BudgetError before simulating
// anything. Zero (the default) disables the cap.
func MaxPoints(n int) JobOption {
	if n < 0 {
		n = 0
	}
	return func(j *Job) { j.maxPoints = n }
}

// NewJob returns a job-scoped handle on the engine. Jobs inherit the
// engine's default progress callback unless JobProgress overrides it.
func (e *Engine) NewJob(opts ...JobOption) *Job {
	j := &Job{e: e, progress: e.progress, hot: make([]hotSlot, e.workers)}
	for _, o := range opts {
		o(j)
	}
	return j
}

// Stats returns a snapshot of the job's counters.
func (j *Job) Stats() Stats {
	j.e.mu.Lock()
	s := j.stats
	j.e.mu.Unlock()
	for i := range j.hot {
		j.hot[i].addInto(&s)
	}
	s.WorstRun, s.WorstKey = j.worst.get()
	return s
}

// runItem is one simulation scheduled by a RunAll call.
type runItem struct {
	fp string
	p  Point
	en *entry
}

// PointResult is one point's outcome in a RunAll campaign: its results, or
// the error that prevented them (a *RunError for genuine failures, a
// cancellation error for points dropped by fail-fast or the caller's
// context).
type PointResult struct {
	Key string
	Res sim.Results
	Err error
}

// RunAll is the engine's primitive: it executes the points and returns
// every point's individual outcome in submission order — the
// graceful-degradation interface. With ContinueOnError, a campaign with
// failing points still yields results for every point that could run, each
// failure annotated in place; the default is fail-fast (the first genuine
// failure cancels pending points, which report cancellation errors). The
// returned error is only non-nil for planning problems (unhashable
// configurations, an exceeded run budget) — per-point failures live in the
// PointResults.
func (j *Job) RunAll(ctx context.Context, points []Point) ([]PointResult, error) {
	waiters, err := j.execute(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make([]PointResult, len(points))
	for i, en := range waiters {
		<-en.done
		out[i] = PointResult{Key: points[i].Key, Res: en.res, Err: en.err}
	}
	return out, nil
}

// Run is a thin wrapper over RunAll for all-or-nothing campaigns: it
// returns just the results, in submission order, or the first genuine
// failure (a *RunError, in submission order). Cancellations are reported
// only when no genuine failure explains them.
func (j *Job) Run(ctx context.Context, points []Point) ([]sim.Results, error) {
	all, err := j.RunAll(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Results, len(points))
	var cancelErr error
	for i, pr := range all {
		switch {
		case pr.Err == nil:
			out[i] = pr.Res
		case isCancel(pr.Err):
			if cancelErr == nil {
				cancelErr = fmt.Errorf("sweep: point %q: %w", points[i].Key, pr.Err)
			}
		default:
			return nil, pr.Err
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}

// RunMap is a thin wrapper over Run that keys the results by Point.Key.
func (j *Job) RunMap(ctx context.Context, points []Point) (map[string]sim.Results, error) {
	res, err := j.Run(ctx, points)
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Results, len(points))
	for i, p := range points {
		out[p.Key] = res[i]
	}
	return out, nil
}

// RunAll executes the points on an anonymous job (engine-default progress,
// no budget). See Job.RunAll.
func (e *Engine) RunAll(ctx context.Context, points []Point) ([]PointResult, error) {
	return e.NewJob().RunAll(ctx, points)
}

// Run executes the points on an anonymous job. See Job.Run.
func (e *Engine) Run(ctx context.Context, points []Point) ([]sim.Results, error) {
	return e.NewJob().Run(ctx, points)
}

// RunMap executes the points on an anonymous job. See Job.RunMap.
func (e *Engine) RunMap(ctx context.Context, points []Point) (map[string]sim.Results, error) {
	return e.NewJob().RunMap(ctx, points)
}

// plan maps each point to its cache entry, creating entries for the runs
// this call owns. It walks the points in submission order, so hit
// accounting and per-shard insertion order are deterministic for any
// worker count (concurrent planners walking the same point sequence
// insert each fingerprint exactly once, in sequence position order).
func (j *Job) plan(points []Point, waiters []*entry) (toRun []runItem, hits int, err error) {
	e := j.e
	// The fingerprint is only needed when something is keyed by it; a
	// memoization-disabled engine with no checkpoint and no ledger skips
	// the hash entirely (it is pure per-point overhead there).
	needFP := !e.noCache || e.cp != nil || e.led != nil
	var cacheHits, cpHits, ledHits int
	defer func() {
		if cacheHits == 0 && cpHits == 0 && ledHits == 0 {
			return
		}
		e.mu.Lock()
		e.stats.CacheHits += cacheHits
		j.stats.CacheHits += cacheHits
		e.stats.CheckpointHits += cpHits
		j.stats.CheckpointHits += cpHits
		e.stats.LedgerHits += ledHits
		j.stats.LedgerHits += ledHits
		e.mu.Unlock()
	}()
	for i, p := range points {
		var fp string
		if needFP {
			if fp, err = p.Fingerprint(); err != nil {
				return nil, hits, fmt.Errorf("sweep: point %q: %w", p.Key, err)
			}
		}
		// warm resolves a point that something fingerprint-keyed already
		// completed (checkpoint file or ledger).
		warm := func() (*entry, bool) {
			if e.cp != nil {
				if res, ok := e.cp.Lookup(fp); ok {
					cpHits++
					return resolvedEntry(res), true
				}
			}
			if e.led != nil {
				if res, ok := e.led.Lookup(fp); ok {
					ledHits++
					return resolvedEntry(res), true
				}
			}
			return nil, false
		}
		if e.noCache {
			if needFP {
				if en, ok := warm(); ok {
					hits++
					waiters[i] = en
					continue
				}
			}
			en := &entry{done: make(chan struct{})}
			waiters[i] = en
			toRun = append(toRun, runItem{fp: fp, p: p, en: en})
			continue
		}
		sh := e.shard(fp)
		sh.mu.Lock()
		if en, ok := sh.cache[fp]; ok {
			sh.mu.Unlock()
			cacheHits++
			hits++
			waiters[i] = en
			continue
		}
		if en, ok := warm(); ok {
			sh.addLocked(fp, en)
			sh.mu.Unlock()
			hits++
			waiters[i] = en
			continue
		}
		en := &entry{done: make(chan struct{})}
		sh.addLocked(fp, en)
		sh.mu.Unlock()
		waiters[i] = en
		toRun = append(toRun, runItem{fp: fp, p: p, en: en})
	}
	return toRun, hits, nil
}

func resolvedEntry(res sim.Results) *entry {
	en := &entry{res: res, done: make(chan struct{})}
	close(en.done)
	return en
}

// execute plans the campaign and fans it out over the worker pool,
// returning each point's entry (resolved or in flight).
func (j *Job) execute(ctx context.Context, points []Point) ([]*entry, error) {
	e := j.e
	e.mu.Lock()
	if j.maxPoints > 0 && j.stats.Points+len(points) > j.maxPoints {
		submitted := j.stats.Points
		e.mu.Unlock()
		return nil, &BudgetError{Submitted: submitted, Requested: len(points), Budget: j.maxPoints}
	}
	e.stats.Points += len(points)
	j.stats.Points += len(points)
	e.mu.Unlock()

	if e.led != nil {
		// One refresh per campaign absorbs everything other worker
		// processes have completed so far; the run loop refreshes again as
		// it claims and waits.
		if err := e.led.Refresh(); err != nil {
			return nil, fmt.Errorf("sweep: ledger refresh: %w", err)
		}
	}

	waiters := make([]*entry, len(points))
	toRun, hits, err := j.plan(points, waiters)
	if err != nil {
		return nil, err
	}
	if len(toRun) == 0 {
		return waiters, nil
	}

	// runCtx is the campaign's cancellation scope: it follows the caller's
	// context and, under fail-fast, is cancelled on the first genuine point
	// failure. Its Done channel is threaded into every simulation as the
	// stop channel, so in-flight runs abort within a few thousand ticks.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	start := time.Now()
	done := 0
	var progMu sync.Mutex
	note := func(it runItem, dur time.Duration, executed bool, ehs, jhs *hotSlot) {
		if executed {
			if e.cacheBound > 0 && !e.noCache {
				// The entry just resolved; entries inserted in-flight become
				// evictable only now, so re-enforce the owning shard's bound.
				sh := e.shard(it.fp)
				sh.mu.Lock()
				sh.evictLocked()
				sh.mu.Unlock()
			}
			ehs.ran.Add(1)
			ehs.simTimeNS.Add(dur.Nanoseconds())
			jhs.ran.Add(1)
			jhs.simTimeNS.Add(dur.Nanoseconds())
			e.worst.note(dur, it.p.Key)
			j.worst.note(dur, it.p.Key)
		}
		if j.progress == nil {
			return
		}
		worst, worstKey := j.worst.get()
		progMu.Lock()
		done++
		p := Progress{
			Done:       hits + done,
			Total:      len(points),
			CacheHits:  hits,
			SimsPerSec: float64(done) / time.Since(start).Seconds(),
			WorstRun:   worst,
			WorstKey:   worstKey,
		}
		j.progress(p)
		progMu.Unlock()
	}

	// Fan the owned runs out over the worker pool. Items are claimed from
	// an atomic cursor rather than a channel: a worker that keeps getting
	// scheduled burns through a contiguous span of points with its arena
	// hot in cache, and nothing blocks on a rendezvous. Workers drain the
	// whole range even after cancellation, failing (and uncaching) the
	// items they skip, so every entry's done channel is guaranteed to
	// close.
	workers := e.workers
	if workers > len(toRun) {
		workers = len(toRun)
	}
	// deferred holds items another process's live ledger claim pushed past:
	// a worker skips ahead to unclaimed work first and comes back to wait on
	// (or steal) the stragglers only once the cursor is drained, so K
	// processes stream through disjoint spans instead of convoying on each
	// other's claims.
	var defMu sync.Mutex
	var deferred []runItem
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ehs, jhs := &e.hot[w], &j.hot[w]
			// Each worker holds one persistent machine slot for its
			// lifetime, acquired lazily on its first real run: consecutive
			// memo-missed runs reset the same arena in place. Between
			// campaigns the arena parks in the process pool, so reuse
			// carries across RunAll calls too.
			var a *arena
			defer func() {
				if a != nil {
					e.releaseArena(w, a)
				}
			}()
			// runItemFull resolves one item end to end. With block=false a
			// live foreign ledger claim defers the item instead of waiting.
			runItemFull := func(it runItem, block bool) {
				if runCtx.Err() != nil {
					j.fail(it, runCtx.Err(), false)
					return
				}
				var res sim.Results
				var dur time.Duration
				var executed bool
				var err error
				if e.led != nil {
					var wait bool
					res, dur, executed, wait, err = j.runLedgerItem(runCtx, it, &a, w, ehs, jhs, block)
					if wait {
						defMu.Lock()
						deferred = append(deferred, it)
						defMu.Unlock()
						return
					}
				} else {
					if a == nil {
						a = e.acquireArena(w)
					}
					t0 := time.Now()
					res, err = j.runPoint(runCtx, it, a, ehs, jhs)
					dur, executed = time.Since(t0), true
				}
				if err != nil {
					genuine := !isCancel(err)
					j.fail(it, err, genuine)
					if genuine && !e.keepGoing {
						cancelRun()
					}
					return
				}
				if e.cp != nil && executed {
					if cerr := e.cp.add(it.fp, it.p.Key, res); cerr != nil {
						// A result that cannot be checkpointed breaks the
						// resume guarantee; fail the point rather than
						// silently degrade.
						j.fail(it, fmt.Errorf("sweep: checkpoint write: %w", cerr), true)
						if !e.keepGoing {
							cancelRun()
						}
						return
					}
				}
				it.en.res = res
				close(it.en.done)
				note(it, dur, executed, ehs, jhs)
			}
			for {
				n := next.Add(1) - 1
				if n >= int64(len(toRun)) {
					break
				}
				runItemFull(toRun[n], false)
			}
			// Cursor drained: pick up the items parked behind foreign
			// claims, this time waiting them out (or stealing on expiry).
			for {
				defMu.Lock()
				if len(deferred) == 0 {
					defMu.Unlock()
					return
				}
				it := deferred[len(deferred)-1]
				deferred = deferred[:len(deferred)-1]
				defMu.Unlock()
				runItemFull(it, true)
			}
		}(w)
	}
	wg.Wait()
	return waiters, nil
}

// runLedgerItem resolves one item through the work-stealing ledger: a
// point another process already completed is a ledger hit; an unclaimed
// (or stale-claimed) point is claimed, executed locally and completed into
// the ledger. A point under another live worker's claim is waited for —
// polling until it completes or its claim expires and can be stolen — when
// block is set; otherwise it is handed back (wait=true) so the caller can
// defer it and move on to unclaimed work.
func (j *Job) runLedgerItem(ctx context.Context, it runItem, ap **arena, w int, ehs, jhs *hotSlot, block bool) (res sim.Results, dur time.Duration, executed bool, wait bool, err error) {
	e := j.e
	led := e.led
	for {
		if r, ok := led.Lookup(it.fp); ok {
			e.mu.Lock()
			e.stats.LedgerHits++
			j.stats.LedgerHits++
			e.mu.Unlock()
			return r, 0, false, false, nil
		}
		if reason, ok := led.PoisonReason(it.fp); ok {
			// Quarantined by a supervisor: the same point crashed enough
			// workers that running it again would only crash this one too.
			return sim.Results{}, 0, false, false,
				&PoisonedError{Key: it.p.Key, Fingerprint: it.fp, Reason: reason}
		}
		won, stole, cerr := led.TryClaim(it.fp, it.p.Key)
		if cerr != nil {
			return sim.Results{}, 0, false, false, fmt.Errorf("sweep: ledger claim: %w", cerr)
		}
		if won {
			if stole {
				e.mu.Lock()
				e.stats.Steals++
				j.stats.Steals++
				e.mu.Unlock()
			}
			// Chaos hook: a crash schedule keyed to this point kills the
			// process here — after the claim, before the run — modeling a
			// poisoned input. No-op (one atomic load) unless armed.
			failpoint.CrashIf(FPLedgerClaimed, it.p.Key)
			if *ap == nil {
				*ap = e.acquireArena(w)
			}
			t0 := time.Now()
			r, rerr := j.runPoint(ctx, it, *ap, ehs, jhs)
			dur = time.Since(t0)
			if rerr != nil {
				// The claim is left to expire; another worker will steal
				// and re-attempt the point (and, for deterministic
				// failures, reach the same verdict independently).
				return sim.Results{}, dur, true, false, rerr
			}
			if werr := led.Complete(it.fp, it.p.Key, r); werr != nil {
				return sim.Results{}, dur, true, false, fmt.Errorf("sweep: ledger write: %w", werr)
			}
			return r, dur, true, false, nil
		}
		if !block {
			return sim.Results{}, 0, false, true, nil
		}
		// Another live worker owns the claim: wait a poll interval, then
		// re-check (TryClaim refreshes the ledger view each attempt).
		select {
		case <-ctx.Done():
			return sim.Results{}, 0, false, false, ctx.Err()
		case <-time.After(led.pollEvery()):
		}
	}
}

// runPoint executes one point with panic isolation, the per-run deadline,
// and bounded retry of transient failures, on the worker's arena.
func (j *Job) runPoint(ctx context.Context, it runItem, a *arena, ehs, jhs *hotSlot) (sim.Results, error) {
	e := j.e
	attempt := 0
	for {
		attempt++
		res, err := j.runOnce(ctx, it.p, a, ehs, jhs)
		if err == nil {
			return res, nil
		}
		var ce *sim.CheckError
		if errors.As(err, &ce) && ce.Kind == sim.FailAborted {
			// Stopped through the stop channel: a cancellation, not a
			// failure of this point.
			if cerr := ctx.Err(); cerr != nil {
				return sim.Results{}, cerr
			}
			return sim.Results{}, context.Canceled
		}
		if attempt <= e.retries && transient(err) && ctx.Err() == nil {
			e.mu.Lock()
			e.stats.Retried++
			j.stats.Retried++
			e.mu.Unlock()
			time.Sleep(time.Duration(attempt) * e.backoff)
			continue
		}
		re := &RunError{
			Key:         it.p.Key,
			Benchmark:   it.p.Benchmark,
			Seed:        it.p.Seed,
			Fingerprint: it.fp,
			Attempts:    attempt,
			Err:         err,
		}
		var pe *panicError
		if errors.As(err, &pe) {
			re.Stack = pe.stack
		}
		return sim.Results{}, re
	}
}

// runOnce executes one attempt on the worker's arena, converting panics —
// the simulator's structured failures and anything else — into errors. The
// arena's machine is reset in place when present (the steady-state path:
// zero arena allocation) and constructed on first use. A structured
// failure leaves the arena reusable — Machine.Reset restores a
// bit-identical fresh machine from any mid-run state — but an unstructured
// panic or a failed reset drops it, since its invariants are unknown.
// The reuse accounting goes to this worker's padded counter slots, so the
// hot path never takes the engine mutex.
//
//vsv:hotpath
func (j *Job) runOnce(ctx context.Context, p Point, a *arena, ehs, jhs *hotSlot) (res sim.Results, err error) {
	e := j.e
	//vsvlint:ignore hotpath the panic-recovery boundary must be a deferred function literal; one closure per attempt, amortized against the whole run
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ce, ok := r.(*sim.CheckError); ok {
			err = ce
			return
		}
		a.m = nil
		err = &panicError{value: r, stack: debug.Stack()}
	}()
	opts := []sim.Option{
		sim.WithConfig(p.Config), sim.WithSeed(p.Seed), sim.WithStop(ctx.Done()),
	}
	if e.runTimeout > 0 {
		opts = append(opts, sim.WithWallDeadline(time.Now().Add(e.runTimeout)))
	}
	reused := a.m != nil
	if reused {
		if err := a.m.ResetBench(p.Benchmark, opts...); err != nil {
			a.m = nil
			return sim.Results{}, err
		}
	} else {
		m, err := sim.NewBench(p.Benchmark, opts...)
		if err != nil {
			return sim.Results{}, err
		}
		a.m = m
	}
	if reused {
		ehs.arenaReuses.Add(1)
		jhs.arenaReuses.Add(1)
	} else {
		ehs.freshBuilds.Add(1)
		jhs.freshBuilds.Add(1)
	}
	return a.m.Run(p.Benchmark), nil
}

// fail marks an entry as errored and removes it from the cache so a later
// campaign re-executes the point; genuine failures (not cancellations) are
// counted.
func (j *Job) fail(it runItem, err error, genuine bool) {
	e := j.e
	if !e.noCache && it.fp != "" {
		sh := e.shard(it.fp)
		sh.mu.Lock()
		if cur, ok := sh.cache[it.fp]; ok && cur == it.en {
			delete(sh.cache, it.fp)
		}
		sh.mu.Unlock()
	}
	if genuine {
		e.mu.Lock()
		e.stats.Failed++
		j.stats.Failed++
		e.mu.Unlock()
	}
	it.en.err = err
	close(it.en.done)
}
