package sweep

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// tinyConfig keeps test simulations short.
func tinyConfig() sim.Config {
	cfg := sim.BenchConfig()
	cfg.WarmupInstructions = 4_000
	cfg.MeasureInstructions = 20_000
	return cfg
}

func vsvConfig() sim.Config {
	return tinyConfig().WithVSV(core.PolicyFSM())
}

// testPoints is a small mixed campaign: two benchmarks × (baseline, VSV).
func testPoints() []Point {
	base, vsv := tinyConfig(), vsvConfig()
	return []Point{
		{Key: "base/mcf", Benchmark: "mcf", Config: base},
		{Key: "vsv/mcf", Benchmark: "mcf", Config: vsv},
		{Key: "base/eon", Benchmark: "eon", Config: base},
		{Key: "vsv/eon", Benchmark: "eon", Config: vsv},
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Point{Key: "x", Benchmark: "mcf", Config: tinyConfig()}
	b := Point{Key: "completely different key", Benchmark: "mcf", Config: tinyConfig()}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := b.Fingerprint()
	if fa != fb {
		t.Error("key participates in the fingerprint; it must not")
	}
	c := a
	c.Seed = 7
	if fc, _ := c.Fingerprint(); fc == fa {
		t.Error("seed does not participate in the fingerprint")
	}
	d := Point{Benchmark: "mcf", Config: vsvConfig()}
	if fd, _ := d.Fingerprint(); fd == fa {
		t.Error("config does not participate in the fingerprint")
	}
	e := Point{Benchmark: "eon", Config: tinyConfig()}
	if fe, _ := e.Fingerprint(); fe == fa {
		t.Error("benchmark does not participate in the fingerprint")
	}
}

// TestDeterministicAcrossWorkers is the scheduling-independence contract:
// the same campaign must return identical results (values and order) for
// any worker count and any GOMAXPROCS. make check runs this under -race so
// scheduling races surface.
func TestDeterministicAcrossWorkers(t *testing.T) {
	want, err := New(Workers(1)).Run(context.Background(), testPoints())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := New(Workers(workers)).Run(context.Background(), testPoints())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	got, err := New(Workers(8)).Run(context.Background(), testPoints())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("results differ under GOMAXPROCS=2")
	}
}

func TestCacheHitAccounting(t *testing.T) {
	e := New(Workers(4))
	pts := testPoints()
	// Duplicate the whole campaign in one batch: the copies must all hit.
	dup := append(append([]Point(nil), pts...), pts...)
	res, err := e.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(dup) {
		t.Fatalf("results = %d, want %d", len(res), len(dup))
	}
	for i := range pts {
		if !reflect.DeepEqual(res[i], res[i+len(pts)]) {
			t.Fatalf("duplicate point %d diverged from its original", i)
		}
	}
	st := e.Stats()
	if st.Ran != len(pts) || st.CacheHits != len(pts) || st.Points != len(dup) {
		t.Fatalf("stats = %+v, want ran %d, hits %d", st, len(pts), len(pts))
	}
	// A second Run of the same points is served entirely from the cache.
	if _, err := e.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Ran != len(pts) || st.CacheHits != 2*len(pts) {
		t.Fatalf("post-rerun stats = %+v", st)
	}
	if st.Points != st.Ran+st.CacheHits {
		t.Fatalf("points %d != ran %d + hits %d", st.Points, st.Ran, st.CacheHits)
	}
	if st.WorstRun <= 0 || st.WorstKey == "" || st.SimTime < st.WorstRun {
		t.Fatalf("timing stats implausible: %+v", st)
	}
}

func TestWithoutCache(t *testing.T) {
	e := New(Workers(2), WithoutCache())
	pts := testPoints()[:2]
	dup := append(append([]Point(nil), pts...), pts...)
	if _, err := e.Run(context.Background(), dup); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Ran != len(dup) || st.CacheHits != 0 {
		t.Fatalf("cache not disabled: %+v", st)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls int32
	var last Progress
	e := New(Workers(2), OnProgress(func(p Progress) {
		atomic.AddInt32(&calls, 1)
		last = p // serialized by the engine
	}))
	pts := testPoints()
	if _, err := e.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&calls); got != int32(len(pts)) {
		t.Fatalf("progress calls = %d, want %d", got, len(pts))
	}
	if last.Done != len(pts) || last.Total != len(pts) {
		t.Fatalf("final progress = %+v", last)
	}
	if last.SimsPerSec <= 0 || last.WorstRun <= 0 || last.WorstKey == "" {
		t.Fatalf("progress rates missing: %+v", last)
	}
}

// TestCancellationMidCampaign cancels after the first completed simulation
// of a long campaign, checks Run reports the cancellation, and checks the
// engine stays usable: no entry is left permanently in flight, and a later
// Run completes the remaining points.
func TestCancellationMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(Workers(1), OnProgress(func(Progress) { cancel() }))
	var pts []Point
	for _, seed := range []uint64{0, 1, 2, 3, 4, 5} {
		pts = append(pts, Point{Key: "eon", Benchmark: "eon", Seed: seed, Config: tinyConfig()})
	}
	_, err := e.Run(ctx, pts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.Ran >= len(pts) {
		t.Fatalf("cancellation did not stop the campaign: %+v", st)
	}
	ranBefore := st.Ran
	res, err := New(Workers(2)).Run(context.Background(), pts[:1]) // sanity: points are valid
	if err != nil || len(res) != 1 {
		t.Fatalf("control run failed: %v", err)
	}
	// The same engine finishes the campaign on a fresh context, reusing
	// whatever completed before cancellation.
	out, err := e.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pts) {
		t.Fatalf("resumed run returned %d results", len(out))
	}
	st = e.Stats()
	if st.Ran != len(pts) {
		t.Fatalf("resumed engine ran %d total (was %d), want %d", st.Ran, ranBefore, len(pts))
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Workers(2))
	if _, err := e.Run(ctx, testPoints()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st := e.Stats(); st.Ran != 0 {
		t.Fatalf("ran %d sims despite pre-cancelled context", st.Ran)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	e := New(Workers(2))
	_, err := e.Run(context.Background(), []Point{
		{Key: "bad", Benchmark: "nonesuch", Config: tinyConfig()},
	})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The failed point must not poison the cache permanently in a way that
	// blocks valid reruns of other points.
	if _, err := e.Run(context.Background(), testPoints()[:1]); err != nil {
		t.Fatalf("engine unusable after error: %v", err)
	}
}

func TestInvalidConfigSurfacesError(t *testing.T) {
	cfg := tinyConfig()
	cfg.MeasureInstructions = 0
	_, err := New(Workers(1)).Run(context.Background(), []Point{
		{Key: "bad", Benchmark: "eon", Config: cfg},
	})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunMap(t *testing.T) {
	e := New(Workers(4))
	pts := testPoints()
	m, err := e.RunMap(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(pts) {
		t.Fatalf("map size = %d", len(m))
	}
	for _, p := range pts {
		if m[p.Key].Instructions == 0 {
			t.Fatalf("point %q missing or empty", p.Key)
		}
	}
	// VSV runs spend time in low-power mode on mcf; baselines never do.
	if m["vsv/mcf"].LowFrac == 0 || m["base/mcf"].LowFrac != 0 {
		t.Fatalf("low fractions implausible: vsv %v base %v",
			m["vsv/mcf"].LowFrac, m["base/mcf"].LowFrac)
	}
}

func TestWorkersClamped(t *testing.T) {
	e := New(Workers(0))
	if e.workers != 1 {
		t.Fatalf("workers = %d, want 1", e.workers)
	}
	if _, err := e.Run(context.Background(), nil); err != nil {
		t.Fatalf("empty campaign errored: %v", err)
	}
}
