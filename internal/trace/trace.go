// Package trace records time-series samples of a running simulation —
// supply voltage, power, issue rate, power mode — so the dynamics of VSV
// (the sawtooth of ramps, the stall-triggered descents) can be plotted,
// not just averaged.
package trace

import (
	"fmt"
	"strings"
)

// Sample is one point of the time series.
type Sample struct {
	// Tick is the sample time (end of the sampling interval).
	Tick int64
	// VDD is the scaled domain's supply at the sample tick.
	VDD float64
	// Mode is the controller mode's name at the sample tick ("high" for
	// baseline machines).
	Mode string
	// AvgPowerW is the mean power over the sampling interval.
	AvgPowerW float64
	// IPC is instructions per tick over the sampling interval.
	IPC float64
	// LowFrac is the fraction of the interval spent outside full speed.
	LowFrac float64
	// Misses is the number of demand L2 misses detected in the interval.
	Misses uint64
}

// Recorder accumulates samples at a fixed tick interval. The machine calls
// Observe every tick with that tick's deltas; the recorder aggregates and
// emits one sample per interval, up to a bounded count (sampling stops
// silently afterwards so long runs cannot exhaust memory).
type Recorder struct {
	interval   int64
	maxSamples int

	samples []Sample

	// interval accumulators
	ticks    int64
	energy   float64
	commits  uint64
	lowTicks int64
	misses   uint64
}

// NewRecorder builds a recorder sampling every interval ticks, keeping at
// most maxSamples samples. It panics on non-positive arguments.
func NewRecorder(interval int64, maxSamples int) *Recorder {
	r := &Recorder{}
	r.Reinit(interval, maxSamples)
	return r
}

// Reinit reinitializes the recorder in place to the state of
// NewRecorder(interval, maxSamples), keeping the sample backing array. It
// is distinct from Reset, which keeps the configured interval (end of
// warm-up).
func (r *Recorder) Reinit(interval int64, maxSamples int) {
	if interval < 1 || maxSamples < 1 {
		panic("trace: interval and maxSamples must be positive")
	}
	r.interval = interval
	r.maxSamples = maxSamples
	r.Reset()
}

// Interval returns the sampling interval in ticks.
func (r *Recorder) Interval() int64 { return r.interval }

// Observe feeds one tick's deltas: the energy dissipated this tick, the
// instructions committed this tick, the instantaneous VDD and mode name,
// whether the pipeline ran below full speed this tick, and how many demand
// misses were detected this tick.
func (r *Recorder) Observe(tick int64, energyNJ float64, commits uint64,
	vdd float64, mode string, slow bool, missesThisTick uint64) {
	r.ticks++
	r.energy += energyNJ
	r.commits += commits
	if slow {
		r.lowTicks++
	}
	r.misses += missesThisTick
	if r.ticks < r.interval {
		return
	}
	if len(r.samples) < r.maxSamples {
		r.samples = append(r.samples, Sample{
			Tick:      tick,
			VDD:       vdd,
			Mode:      mode,
			AvgPowerW: r.energy / float64(r.ticks),
			IPC:       float64(r.commits) / float64(r.ticks),
			LowFrac:   float64(r.lowTicks) / float64(r.ticks),
			Misses:    r.misses,
		})
	}
	r.ticks, r.energy, r.commits, r.lowTicks, r.misses = 0, 0, 0, 0, 0
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Reset clears the series and the in-progress interval (end of warm-up).
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.ticks, r.energy, r.commits, r.lowTicks, r.misses = 0, 0, 0, 0, 0
}

// CSV renders the series with a header row.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("tick,vdd,mode,avg_power_w,ipc,low_frac,misses\n")
	for _, s := range r.samples {
		fmt.Fprintf(&b, "%d,%.3f,%s,%.4f,%.4f,%.3f,%d\n",
			s.Tick, s.VDD, s.Mode, s.AvgPowerW, s.IPC, s.LowFrac, s.Misses)
	}
	return b.String()
}

// Sparkline renders the power series as a compact unicode strip — handy
// for eyeballing the VSV sawtooth in a terminal.
func (r *Recorder) Sparkline() string {
	if len(r.samples) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := r.samples[0].AvgPowerW, r.samples[0].AvgPowerW
	for _, s := range r.samples {
		if s.AvgPowerW < lo {
			lo = s.AvgPowerW
		}
		if s.AvgPowerW > hi {
			hi = s.AvgPowerW
		}
	}
	var b strings.Builder
	for _, s := range r.samples {
		idx := 0
		if hi > lo {
			idx = int((s.AvgPowerW - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
