package trace

import (
	"strings"
	"testing"
)

func TestSamplingInterval(t *testing.T) {
	r := NewRecorder(10, 100)
	for tick := int64(0); tick < 95; tick++ {
		r.Observe(tick, 2.0, 3, 1.8, "high", false, 0)
	}
	if got := len(r.Samples()); got != 9 {
		t.Fatalf("samples = %d, want 9 (95 ticks / interval 10)", got)
	}
	s := r.Samples()[0]
	if s.Tick != 9 {
		t.Errorf("first sample tick = %d", s.Tick)
	}
	if s.AvgPowerW < 1.9 || s.AvgPowerW > 2.1 {
		t.Errorf("power = %v, want ~2", s.AvgPowerW)
	}
	if s.IPC < 2.9 || s.IPC > 3.1 {
		t.Errorf("IPC = %v, want ~3", s.IPC)
	}
}

func TestLowFracAndMisses(t *testing.T) {
	r := NewRecorder(4, 10)
	for tick := int64(0); tick < 4; tick++ {
		r.Observe(tick, 1, 0, 1.2, "low", tick%2 == 0, 1)
	}
	s := r.Samples()[0]
	if s.LowFrac != 0.5 {
		t.Errorf("low frac = %v", s.LowFrac)
	}
	if s.Misses != 4 {
		t.Errorf("misses = %d", s.Misses)
	}
	if s.Mode != "low" || s.VDD != 1.2 {
		t.Errorf("sample = %+v", s)
	}
}

func TestMaxSamplesBounded(t *testing.T) {
	r := NewRecorder(1, 3)
	for tick := int64(0); tick < 100; tick++ {
		r.Observe(tick, 1, 0, 1.8, "high", false, 0)
	}
	if len(r.Samples()) != 3 {
		t.Fatalf("samples = %d, want cap 3", len(r.Samples()))
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(2, 10)
	r.Observe(0, 1, 1, 1.8, "high", true, 1)
	r.Reset()
	if len(r.Samples()) != 0 {
		t.Fatal("reset kept samples")
	}
	// A fresh interval must not inherit the old accumulators.
	r.Observe(10, 1, 1, 1.8, "high", false, 0)
	r.Observe(11, 1, 1, 1.8, "high", false, 0)
	s := r.Samples()[0]
	if s.LowFrac != 0 || s.Misses != 0 {
		t.Fatalf("accumulators leaked across Reset: %+v", s)
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder(2, 10)
	r.Observe(0, 1, 1, 1.8, "high", false, 0)
	r.Observe(1, 2, 3, 1.8, "high", false, 2)
	csv := r.CSV()
	if !strings.HasPrefix(csv, "tick,vdd,mode,avg_power_w,ipc,low_frac,misses\n") {
		t.Fatalf("header missing: %q", csv)
	}
	if !strings.Contains(csv, "1,1.800,high,") {
		t.Fatalf("row missing: %q", csv)
	}
}

func TestSparkline(t *testing.T) {
	r := NewRecorder(1, 10)
	for tick := int64(0); tick < 4; tick++ {
		r.Observe(tick, float64(tick*tick), 0, 1.8, "high", false, 0)
	}
	sp := r.Sparkline()
	if len([]rune(sp)) != 4 {
		t.Fatalf("sparkline runes = %d, want 4: %q", len([]rune(sp)), sp)
	}
	if NewRecorder(1, 1).Sparkline() != "" {
		t.Fatal("empty recorder sparkline should be empty")
	}
}

func TestFlatSparkline(t *testing.T) {
	r := NewRecorder(1, 10)
	for tick := int64(0); tick < 3; tick++ {
		r.Observe(tick, 2, 0, 1.8, "high", false, 0)
	}
	// Constant power: all runes identical, no panic on hi==lo.
	sp := []rune(r.Sparkline())
	for _, c := range sp {
		if c != sp[0] {
			t.Fatalf("flat series not flat: %q", string(sp))
		}
	}
}

func TestNewRecorderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0,0) did not panic")
		}
	}()
	NewRecorder(0, 0)
}
