package tracefile

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/isa"
)

// fuzzSeedTrace builds a small valid trace for the corpus.
func fuzzSeedTrace(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	insts := []isa.Inst{
		{Op: isa.OpIntALU, PC: 0x1000, Src1: 1, Src2: 2, Dst: 3},
		{Op: isa.OpLoad, PC: 0x1004, Addr: 0x8000, Src1: 3, Dst: 4},
		{Op: isa.OpBranch, PC: 0x1008, Target: 0x1000, Taken: true, Src1: 4},
		{Op: isa.OpStore, PC: 0x100c, Addr: 0x8020, Src1: 4, Src2: 3},
	}
	for i := range insts {
		insts[i].Src1 = normReg(insts[i].Src1)
		insts[i].Src2 = normReg(insts[i].Src2)
		insts[i].Dst = normReg(insts[i].Dst)
		if err := w.Write(&insts[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func normReg(r isa.Reg) isa.Reg {
	if r.Valid() {
		return r
	}
	return isa.RegNone
}

// FuzzReader hardens the trace parser against arbitrary bytes: it must
// reject or cleanly EOF on any input — never panic, never loop — and any
// trace it does accept must round-trip exactly through Writer and back.
func FuzzReader(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated mid-instruction
	f.Add(seed[:8])           // header only
	f.Add([]byte("VSVT"))     // torn header
	f.Add([]byte("not a trace at all"))
	f.Add(append(append([]byte{}, seed...), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var parsed []isa.Inst
		const maxInsts = 1 << 16 // bound work; inputs are small
		for len(parsed) < maxInsts {
			var in isa.Inst
			err := r.Next(&in)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed tail: rejected cleanly, nothing to check
			}
			parsed = append(parsed, in)
		}

		// The accepted prefix must survive a write/read round trip bit-equal
		// (the encoding is delta-based, so this exercises both directions).
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parsed {
			if err := w.Write(&parsed[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := range parsed {
			var in isa.Inst
			if err := rr.Next(&in); err != nil {
				t.Fatalf("round trip lost instruction %d: %v", i, err)
			}
			if !reflect.DeepEqual(in, parsed[i]) {
				t.Fatalf("instruction %d changed in round trip:\nwas %+v\nnow %+v", i, parsed[i], in)
			}
		}
		var in isa.Inst
		if err := rr.Next(&in); err != io.EOF {
			t.Fatalf("round trip grew extra instructions: %v", err)
		}
	})
}
