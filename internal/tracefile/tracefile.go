// Package tracefile serializes dynamic instruction traces to a compact
// binary format, so workloads can be generated once, inspected, shared and
// replayed — the classic trace-driven-simulator workflow. The format is
// delta/varint encoded: a typical synthetic SPEC2K stream compresses to
// about three bytes per instruction.
//
// Format (little-endian varints, after an 8-byte header):
//
//	magic "VSVT" | version u8 | reserved [3]u8
//	per instruction:
//	  op u8 | flags u8 | regs u8[n] | pc zigzag-delta | [addr zigzag-delta]
//	  [target zigzag-delta]
//
// where flags carry the branch outcome, call/return kind and which operand
// registers are present, and addr/target appear only for memory and branch
// operations respectively.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// magic identifies trace files.
var magic = [4]byte{'V', 'S', 'V', 'T'}

// Version is the current format version.
const Version = 1

const (
	flagTaken   = 1 << 0
	flagCall    = 1 << 1
	flagRet     = 1 << 2
	flagHasSrc1 = 1 << 3
	flagHasSrc2 = 1 << 4
	flagHasDst  = 1 << 5
)

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }
func delta(cur, prev uint64) uint64 {
	return zigzag(int64(cur) - int64(prev))
}
func undelta(d, prev uint64) uint64 {
	return uint64(int64(prev) + unzig(d))
}

// Writer streams instructions to an underlying io.Writer. Close (or Flush)
// must be called to drain the internal buffer.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	prevTgt  uint64
	count    uint64
	scratch  [binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 64<<10)
	header := append(magic[:], Version, 0, 0, 0)
	if _, err := bw.Write(header); err != nil {
		return nil, fmt.Errorf("tracefile: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.scratch[:], v)
	_, err := w.w.Write(w.scratch[:n])
	return err
}

// Write appends one instruction.
func (w *Writer) Write(in *isa.Inst) error {
	var flags byte
	if in.Taken {
		flags |= flagTaken
	}
	switch in.CallRet {
	case 1:
		flags |= flagCall
	case 2:
		flags |= flagRet
	}
	if in.Src1.Valid() {
		flags |= flagHasSrc1
	}
	if in.Src2.Valid() {
		flags |= flagHasSrc2
	}
	if in.Dst.Valid() {
		flags |= flagHasDst
	}
	if err := w.w.WriteByte(byte(in.Op)); err != nil {
		return err
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	for _, r := range []struct {
		present bool
		reg     isa.Reg
	}{
		{in.Src1.Valid(), in.Src1},
		{in.Src2.Valid(), in.Src2},
		{in.Dst.Valid(), in.Dst},
	} {
		if r.present {
			if err := w.w.WriteByte(byte(r.reg)); err != nil {
				return err
			}
		}
	}
	if err := w.uvarint(delta(in.PC, w.prevPC)); err != nil {
		return err
	}
	w.prevPC = in.PC
	if in.Op.IsMem() {
		if err := w.uvarint(delta(in.Addr, w.prevAddr)); err != nil {
			return err
		}
		w.prevAddr = in.Addr
	}
	if in.Op == isa.OpBranch {
		if err := w.uvarint(delta(in.Target, w.prevTgt)); err != nil {
			return err
		}
		w.prevTgt = in.Target
	}
	w.count++
	return nil
}

// Count returns the number of instructions written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams instructions from a trace file.
type Reader struct {
	r        *bufio.Reader
	prevPC   uint64
	prevAddr uint64
	prevTgt  uint64
	count    uint64
}

// NewReader validates the header and returns a trace reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var header [8]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	if [4]byte(header[:4]) != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", header[:4])
	}
	if header[4] != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d", header[4])
	}
	return &Reader{r: br}, nil
}

// Next decodes the next instruction; it returns io.EOF cleanly at the end
// of the trace and io.ErrUnexpectedEOF on truncation.
func (r *Reader) Next(in *isa.Inst) error {
	op, err := r.r.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return err
	}
	if int(op) >= isa.NumOpClasses {
		return fmt.Errorf("tracefile: invalid op %d at instruction %d", op, r.count)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return eof(err)
	}
	*in = isa.Inst{Op: isa.OpClass(op), Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	in.Taken = flags&flagTaken != 0
	switch {
	case flags&flagCall != 0:
		in.CallRet = 1
	case flags&flagRet != 0:
		in.CallRet = 2
	}
	for _, slot := range []*isa.Reg{&in.Src1, &in.Src2, &in.Dst} {
		mask := byte(0)
		switch slot {
		case &in.Src1:
			mask = flagHasSrc1
		case &in.Src2:
			mask = flagHasSrc2
		default:
			mask = flagHasDst
		}
		if flags&mask == 0 {
			continue
		}
		b, err := r.r.ReadByte()
		if err != nil {
			return eof(err)
		}
		reg := isa.Reg(b)
		if !reg.Valid() {
			return fmt.Errorf("tracefile: invalid register %d at instruction %d", b, r.count)
		}
		*slot = reg
	}
	d, err := binary.ReadUvarint(r.r)
	if err != nil {
		return eof(err)
	}
	in.PC = undelta(d, r.prevPC)
	r.prevPC = in.PC
	if in.Op.IsMem() {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			return eof(err)
		}
		in.Addr = undelta(d, r.prevAddr)
		r.prevAddr = in.Addr
	}
	if in.Op == isa.OpBranch {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			return eof(err)
		}
		in.Target = undelta(d, r.prevTgt)
		r.prevTgt = in.Target
	}
	r.count++
	return nil
}

// Count returns the number of instructions read so far.
func (r *Reader) Count() uint64 { return r.count }

func eof(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Source is an in-memory trace that implements pipeline.InstSource by
// looping over the recorded instructions (simulation windows may exceed
// the trace length).
type Source struct {
	insts []isa.Inst
	i     int
	laps  int
}

// LoadSource reads an entire trace into memory.
func LoadSource(r io.Reader) (*Source, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	s := &Source{}
	for {
		var in isa.Inst
		err := tr.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.insts = append(s.insts, in)
	}
	if len(s.insts) == 0 {
		return nil, fmt.Errorf("tracefile: empty trace")
	}
	return s, nil
}

// Len returns the trace length in instructions.
func (s *Source) Len() int { return len(s.insts) }

// Laps returns how many times the trace has wrapped.
func (s *Source) Laps() int { return s.laps }

// Next implements pipeline.InstSource.
func (s *Source) Next(in *isa.Inst) {
	*in = s.insts[s.i]
	s.i++
	if s.i == len(s.insts) {
		s.i = 0
		s.laps++
	}
}
