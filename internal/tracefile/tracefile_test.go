package tracefile

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func roundTrip(t *testing.T, insts []isa.Inst) []isa.Inst {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []isa.Inst
	for {
		var in isa.Inst
		err := r.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	return out
}

func TestRoundTripBasics(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x1000, Op: isa.OpIntALU, Src1: 1, Src2: 2, Dst: 3},
		{PC: 0x1004, Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 5, Addr: 0x4000_0000},
		{PC: 0x1008, Op: isa.OpStore, Src1: 6, Src2: 7, Addr: 0x2000_0100},
		{PC: 0x100c, Op: isa.OpBranch, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: isa.RegNone, Taken: true, Target: 0x1000},
		{PC: 0x1010, Op: isa.OpBranch, Taken: true, Target: 0x9000, CallRet: 1,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone},
		{PC: 0x9000, Op: isa.OpBranch, Taken: true, Target: 0x1014, CallRet: 2,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone},
		{PC: 0x1014, Op: isa.OpPrefetch, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: isa.RegNone, Addr: 0x4000_1000},
		{PC: 0x1018, Op: isa.OpNop, Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone},
	}
	got := roundTrip(t, insts)
	if len(got) != len(insts) {
		t.Fatalf("count = %d, want %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Errorf("instruction %d: got %+v, want %+v", i, got[i], insts[i])
		}
	}
}

func TestRoundTripWorkloadStream(t *testing.T) {
	// Round-trip a real synthetic benchmark stream and compare field by
	// field.
	p, _ := workload.ByName("swim")
	g := workload.NewGenerator(p)
	insts := make([]isa.Inst, 20000)
	for i := range insts {
		g.Next(&insts[i])
	}
	got := roundTrip(t, insts)
	if len(got) != len(insts) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, got[i], insts[i])
		}
	}
}

func TestCompactness(t *testing.T) {
	p, _ := workload.ByName("gcc")
	g := workload.NewGenerator(p)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 50000
	var in isa.Inst
	for i := 0; i < n; i++ {
		g.Next(&in)
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perInst := float64(buf.Len()) / n
	if perInst > 8 {
		t.Fatalf("trace encodes at %.1f bytes/inst, want < 8", perInst)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(pcs []uint32, ops []uint8, addrs []uint64, takens []bool) bool {
		n := len(pcs)
		for _, s := range [][]int{{len(ops)}, {len(addrs)}, {len(takens)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		if n == 0 {
			return true
		}
		insts := make([]isa.Inst, n)
		for i := 0; i < n; i++ {
			op := isa.OpClass(ops[i]) % isa.OpClass(isa.NumOpClasses)
			insts[i] = isa.Inst{
				PC: uint64(pcs[i]), Op: op,
				Src1: isa.IntReg(int(ops[i])), Src2: isa.RegNone,
				Dst: isa.FPReg(i),
			}
			if op.IsMem() {
				insts[i].Addr = addrs[i]
			}
			if op == isa.OpBranch {
				insts[i].Taken = takens[i]
				insts[i].Target = uint64(pcs[(i+1)%n])
			}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for i := range insts {
			if w.Write(&insts[i]) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range insts {
			var got isa.Inst
			if r.Next(&got) != nil {
				return false
			}
			if got != insts[i] {
				return false
			}
		}
		var extra isa.Inst
		return r.Next(&extra) == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBadVersion(t *testing.T) {
	data := append([]byte("VSVT"), 99, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := isa.Inst{PC: 0x1000, Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2, Addr: 0x4000}
	w.Write(&in)
	w.Write(&in)
	w.Flush()
	data := buf.Bytes()
	// Chop the tail: the reader must report unexpected EOF, not garbage.
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	var got isa.Inst
	if err := r.Next(&got); err != nil {
		t.Fatalf("first instruction should decode: %v", err)
	}
	err = r.Next(&got)
	if err != io.ErrUnexpectedEOF && err == nil {
		t.Fatalf("truncated read error = %v", err)
	}
}

func TestInvalidOpRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	buf.WriteByte(200) // bogus op
	buf.WriteByte(0)
	r, _ := NewReader(&buf)
	var in isa.Inst
	if err := r.Next(&in); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestSourceLoops(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		in := isa.Inst{PC: uint64(0x1000 + i*4), Op: isa.OpIntALU,
			Src1: 1, Src2: 2, Dst: 3}
		w.Write(&in)
	}
	w.Flush()
	s, err := LoadSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	var in isa.Inst
	for i := 0; i < 12; i++ {
		s.Next(&in)
	}
	if s.Laps() != 2 {
		t.Fatalf("laps = %d, want 2 after 12 reads of 5", s.Laps())
	}
	if in.PC != 0x1004 {
		t.Fatalf("position wrong after wrap: %#x", in.PC)
	}
}

func TestLoadSourceEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := LoadSource(&buf); err == nil {
		t.Fatal("empty trace accepted as a source")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := isa.Inst{Op: isa.OpNop, Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	w.Write(&in)
	w.Write(&in)
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}
}

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := isa.Inst{Op: isa.OpNop, Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	w.Write(&in)
	w.Flush()
	r, _ := NewReader(&buf)
	var got isa.Inst
	r.Next(&got)
	if r.Count() != 1 {
		t.Fatalf("reader count = %d", r.Count())
	}
}

// TestGoldenEncoding pins the byte-level format: changing the encoding
// must bump Version, not silently alter these bytes.
func TestGoldenEncoding(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	ld := isa.Inst{PC: 0x1000, Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone,
		Dst: 2, Addr: 0x40}
	br := isa.Inst{PC: 0x1004, Op: isa.OpBranch, Src1: isa.RegNone,
		Src2: isa.RegNone, Dst: isa.RegNone, Taken: true, Target: 0x1000}
	w.Write(&ld)
	w.Write(&br)
	w.Flush()
	want := []byte{
		'V', 'S', 'V', 'T', 1, 0, 0, 0, // header
		// load: op=7, flags=src1|dst=0x28, regs 1,2, pc zz(0x1000), addr zz(0x40)
		7, 0x28, 1, 2, 0x80, 0x40, 0x80, 1,
		// branch: op=9, flags=taken=0x01, pc zz(+4)=8, target zz(0x1000)
		9, 0x01, 8, 0x80, 0x40,
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoding changed:\n got %#v\nwant %#v", buf.Bytes(), want)
	}
}
