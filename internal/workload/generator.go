package workload

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// Kernel PC regions: each kernel's loop body lives in its own small code
// footprint, so the IL1 and BTB behave as they would for real loop nests.
const (
	chasePC   uint64 = 0x0040_0000
	streamPC  uint64 = 0x0048_0000
	computePC uint64 = 0x0050_0000
	branchyPC uint64 = 0x0058_0000
)

// Generator produces the deterministic dynamic instruction stream for one
// benchmark profile. It implements pipeline.InstSource.
type Generator struct {
	prof    Profile
	r       *rng.Source
	kernels [4]kernel
	weights []float64
	index   []int
	cur     kernel
	left    int
}

// NewGenerator builds a generator for the profile, seeded deterministically
// from the benchmark name. It panics on an invalid profile (profiles are
// static data).
func NewGenerator(p Profile) *Generator {
	return NewGeneratorSeed(p, 0)
}

// NewGeneratorSeed builds a generator whose pseudo-random streams are
// additionally perturbed by seed. Seed 0 is the canonical stream used by
// the experiments; other seeds give statistically-equivalent instruction
// streams for robustness studies (different phase interleavings and
// address walks, same calibrated mixture).
//
//vsv:coldpath
func NewGeneratorSeed(p Profile, seed uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	base := rng.NewString(p.Name)
	if seed != 0 {
		base = rng.New(base.Uint64() ^ seed)
	}
	g := &Generator{prof: p, r: base}
	type entry struct {
		w     float64
		build func(r *rng.Source) kernel
	}
	entries := []entry{
		{p.WChase, func(r *rng.Source) kernel {
			return newChaseKernel(r, chasePC, p.ChaseChains, p.ChaseFiller,
				p.ChaseFillerDep, p.ChaseHotFrac)
		}},
		{p.WStream, func(r *rng.Source) kernel {
			return newStreamKernel(r, streamPC, p.StreamStreams, p.StreamColdFrac,
				p.StreamFPOps, p.StreamALUOps, p.StreamFPDep, p.StreamPFCover, p.StreamPFDist)
		}},
		{p.WCompute, func(r *rng.Source) kernel {
			return newComputeKernel(r, computePC, p.ComputeBodyLen, p.ComputeILP,
				p.ComputeFPFrac, p.ComputeMemFrac, p.ComputeWarmFrac, p.ComputeColdFrac)
		}},
		{p.WBranchy, func(r *rng.Source) kernel {
			return newBranchyKernel(r, branchyPC, p.BranchyBlock,
				p.BranchyHardFrac, p.BranchyWarmFrac, p.BranchyColdFrac)
		}},
	}
	for i, e := range entries {
		if e.w <= 0 {
			continue
		}
		g.kernels[i] = e.build(g.r.Split())
		g.weights = append(g.weights, e.w)
		g.index = append(g.index, i)
	}
	g.nextPhase()
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) nextPhase() {
	k := g.index[g.r.Pick(g.weights)]
	g.cur = g.kernels[k]
	g.left = 1 + g.r.Geometric(float64(g.prof.PhaseLen))
}

// Next fills in the next dynamic instruction.
func (g *Generator) Next(in *isa.Inst) {
	if g.left <= 0 {
		g.nextPhase()
	}
	g.cur.emit(in)
	g.left--
}
