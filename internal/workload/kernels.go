// Package workload synthesizes SPEC2K-like dynamic instruction streams.
//
// The paper runs pre-compiled Alpha SPEC2K binaries; we cannot. What VSV's
// behaviour actually depends on is the *timing structure* of each program —
// how much instruction-level parallelism surrounds L2 misses, whether
// missing loads form dependent chains or independent streams, the demand
// miss rate (MR), and the branch behaviour. Each of the 26 benchmarks is
// therefore modeled as a deterministic, seeded mixture of four kernels that
// span that space:
//
//   - chase: pointer chasing — dependent loads over a >L2 footprint
//     (mcf/ammp-like: misses serialize, near-zero ILP under a miss)
//   - stream: strided loads/stores with FP compute over large arrays
//     (swim/applu/mgrid-like: many independent misses, high ILP; carries
//     the software prefetches of the SPEC peak binaries)
//   - compute: register-register compute loops with a tunable dependence
//     distance (eon/sixtrack/wupwise-like: high IPC, few misses)
//   - branchy: short basic blocks with partly unpredictable branches
//     (gcc/twolf/parser-like)
//
// Each benchmark's mixture and knobs are calibrated against the paper's
// Table 2 (IPC and MR per benchmark); EXPERIMENTS.md records measured vs.
// paper values.
package workload

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// Memory-region layout shared by all kernels.
const (
	// HotBase/HotBytes: L1-resident working set (always hits).
	HotBase  uint64 = 0x1000_0000
	HotBytes uint64 = 16 << 10
	// WarmBase/WarmBytes: L2-resident working set (L1 misses, L2 hits).
	WarmBase  uint64 = 0x2000_0000
	WarmBytes uint64 = 1 << 20
	// ColdBase/ColdBytes: streaming/chasing footprint far beyond the 2 MB
	// L2 (drives demand L2 misses).
	ColdBase  uint64 = 0x4000_0000
	ColdBytes uint64 = 64 << 20

	blockBytes uint64 = 32
)

// kernel is a stateful instruction emitter.
type kernel interface {
	emit(in *isa.Inst)
}

// ---------------------------------------------------------------- chase --

// chaseKernel emits pointer-chase iterations: a dependent load per chain
// followed by filler instructions and a loop branch. With FillerDep the
// filler depends on the loaded value, so a missing load starves issue — the
// signature VSV exploits.
type chaseKernel struct {
	r       *rng.Source
	basePC  uint64
	chains  []uint64 // current block index per chain
	strides []uint64
	nblocks uint64

	filler    int
	fillerDep bool
	hotFrac   float64

	chainIdx int
	pos      int
	hotIdx   uint64
	lastHot  bool
}

func newChaseKernel(r *rng.Source, basePC uint64, chains, filler int, fillerDep bool, hotFrac float64) *chaseKernel {
	k := &chaseKernel{
		r: r, basePC: basePC,
		nblocks:   ColdBytes / blockBytes, // power of two
		filler:    filler,
		fillerDep: fillerDep,
		hotFrac:   hotFrac,
	}
	for c := 0; c < chains; c++ {
		k.chains = append(k.chains, r.Uint64n(k.nblocks))
		k.strides = append(k.strides, r.Uint64()|1) // odd → full cycle mod 2^k
	}
	return k
}

func (k *chaseKernel) bodyLen() int { return k.filler + 2 }

func chainReg(c int) isa.Reg { return isa.Reg(8 + c%8) }

func (k *chaseKernel) emit(in *isa.Inst) {
	pc := k.basePC + uint64(k.pos)*isa.InstBytes
	switch {
	case k.pos == 0: // the chase load
		c := k.chainIdx
		if k.r.Bool(k.hotFrac) {
			// A hot-set access: hits the L1, does not advance the chain.
			k.hotIdx++
			addr := HotBase + (k.hotIdx*blockBytes)%HotBytes
			*in = isa.Inst{PC: pc, Op: isa.OpLoad, Src1: chainReg(c),
				Src2: isa.RegNone, Dst: 24, Addr: addr}
			k.lastHot = true
		} else {
			k.chains[c] = (k.chains[c] + k.strides[c]) & (k.nblocks - 1)
			addr := ColdBase + k.chains[c]*blockBytes
			*in = isa.Inst{PC: pc, Op: isa.OpLoad, Src1: chainReg(c),
				Src2: isa.RegNone, Dst: chainReg(c), Addr: addr}
			k.lastHot = false
		}
	case k.pos <= k.filler: // filler
		src := isa.Reg(25)
		if k.fillerDep && !k.lastHot {
			src = chainReg(k.chainIdx)
		}
		*in = isa.Inst{PC: pc, Op: isa.OpIntALU, Src1: src,
			Src2: isa.Reg(26), Dst: isa.Reg(16 + k.pos%8)}
	default: // loop branch, strongly predictable
		*in = isa.Inst{PC: pc, Op: isa.OpBranch, Src1: isa.Reg(16),
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: true, Target: k.basePC}
		k.pos = -1
		k.chainIdx = (k.chainIdx + 1) % len(k.chains)
	}
	k.pos++
}

// --------------------------------------------------------------- stream --

type streamState struct {
	addr, base, size uint64
	cold             bool
}

// streamKernel emits software-pipelined streaming iterations: one load per
// stream (8-byte stride), FP compute, a store, and a loop branch. Cold
// streams walk footprints far beyond the L2; software prefetches cover a
// configurable fraction of their block transitions, as the SPEC peak
// binaries' prefetching would.
type streamKernel struct {
	r      *rng.Source
	basePC uint64

	streams []streamState
	out     streamState

	fpOps   int
	alu     int // address/index arithmetic per iteration
	fpDep   bool
	pfCover float64
	pfDist  uint64

	pos       int // index into the iteration's emission schedule
	sIdx      int // stream being processed
	pfPending bool
	fpCount   int
	aluCount  int
	fpRing    int
}

func newStreamKernel(r *rng.Source, basePC uint64, nStreams int, coldFrac float64,
	fpOps, alu int, fpDep bool, pfCover float64, pfDist int) *streamKernel {
	k := &streamKernel{
		r: r, basePC: basePC,
		fpOps: fpOps, alu: alu, fpDep: fpDep,
		pfCover: pfCover, pfDist: uint64(pfDist),
	}
	// Slices must stay block-aligned: the prefetch trigger fires on block
	// crossings (addr % blockBytes == 0).
	align := func(v uint64) uint64 { return v &^ (blockBytes - 1) }
	nCold := int(coldFrac*float64(nStreams) + 0.5)
	for s := 0; s < nStreams; s++ {
		cold := s < nCold
		var st streamState
		if cold {
			slice := align(ColdBytes / uint64(nStreams+1))
			st = streamState{base: ColdBase + uint64(s)*slice, size: slice, cold: true}
		} else {
			slice := align(WarmBytes / uint64(nStreams+1))
			st = streamState{base: WarmBase + uint64(s)*slice, size: slice}
		}
		st.addr = st.base + r.Uint64n(st.size/8)*8
		k.streams = append(k.streams, st)
	}
	outSlice := align(ColdBytes / uint64(nStreams+1))
	k.out = streamState{base: ColdBase + uint64(nStreams)*outSlice, size: outSlice, cold: true}
	k.out.addr = k.out.base
	return k
}

func (k *streamKernel) emit(in *isa.Inst) {
	pc := k.basePC + uint64(k.pos)*isa.InstBytes
	nS := len(k.streams)
	switch {
	case k.sIdx < nS: // per-stream: optional prefetch, then the load
		st := &k.streams[k.sIdx]
		if !k.pfPending && st.cold && st.addr%blockBytes == 0 && k.r.Bool(k.pfCover) {
			k.pfPending = true
			target := st.addr + k.pfDist*blockBytes
			if target >= st.base+st.size {
				target = st.base + (target-st.base)%st.size
			}
			*in = isa.Inst{PC: pc, Op: isa.OpPrefetch, Src1: isa.Reg(1),
				Src2: isa.RegNone, Dst: isa.RegNone, Addr: target}
			k.pos++
			return
		}
		k.pfPending = false
		*in = isa.Inst{PC: pc, Op: isa.OpLoad, Src1: isa.Reg(1),
			Src2: isa.RegNone, Dst: isa.FPReg(k.sIdx), Addr: st.addr}
		st.addr += 8
		if st.addr >= st.base+st.size {
			st.addr = st.base
		}
		k.sIdx++
		k.pos++
	case k.aluCount < k.alu: // index/address arithmetic (independent)
		*in = isa.Inst{PC: pc, Op: isa.OpIntALU, Src1: isa.Reg(1 + k.aluCount%4),
			Src2: isa.Reg(2), Dst: isa.Reg(16 + k.aluCount%8)}
		k.aluCount++
		k.pos++
	case k.fpCount < k.fpOps: // FP compute over the loaded values
		src1 := isa.FPReg(k.fpCount % nS)
		src2 := isa.FPReg((k.fpCount + 1) % nS)
		if k.fpDep && k.fpCount > 0 {
			src2 = isa.FPReg(8 + (k.fpRing+7)%8)
		}
		op := isa.OpFPAdd
		if k.fpCount%2 == 1 {
			op = isa.OpFPMul
		}
		*in = isa.Inst{PC: pc, Op: op, Src1: src1, Src2: src2,
			Dst: isa.FPReg(8 + k.fpRing%8)}
		k.fpRing++
		k.fpCount++
		k.pos++
	case k.fpCount == k.fpOps: // the store (with its own prefetch coverage)
		if !k.pfPending && k.out.addr%blockBytes == 0 && k.r.Bool(k.pfCover) {
			k.pfPending = true
			target := k.out.addr + k.pfDist*blockBytes
			if target >= k.out.base+k.out.size {
				target = k.out.base + (target-k.out.base)%k.out.size
			}
			*in = isa.Inst{PC: pc, Op: isa.OpPrefetch, Src1: isa.Reg(1),
				Src2: isa.RegNone, Dst: isa.RegNone, Addr: target}
			k.pos++
			return
		}
		k.pfPending = false
		*in = isa.Inst{PC: pc, Op: isa.OpStore, Src1: isa.Reg(1),
			Src2: isa.FPReg(8 + (k.fpRing+7)%8), Addr: k.out.addr}
		k.out.addr += 8
		if k.out.addr >= k.out.base+k.out.size {
			k.out.addr = k.out.base
		}
		k.fpCount++
		k.pos++
	default: // loop branch
		*in = isa.Inst{PC: k.basePC + 0xFC, Op: isa.OpBranch, Src1: isa.Reg(1),
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: true, Target: k.basePC}
		k.pos, k.sIdx, k.fpCount, k.aluCount = 0, 0, 0, 0
	}
}

// -------------------------------------------------------------- compute --

// computeKernel emits long straight-line loop bodies of register compute
// with a tunable dependence distance (the ILP knob) and occasional
// hot/warm/cold memory references.
type computeKernel struct {
	r      *rng.Source
	basePC uint64

	bodyLen  int
	ilp      int
	fpFrac   float64
	memFrac  float64
	warmFrac float64 // of memory refs
	coldFrac float64 // of memory refs

	pos      int
	recent   [16]isa.Reg
	recentFP [16]isa.Reg
	ri, rf   int

	hotIdx, warmIdx, coldIdx uint64
	stride                   uint64
}

func newComputeKernel(r *rng.Source, basePC uint64, bodyLen, ilp int,
	fpFrac, memFrac, warmFrac, coldFrac float64) *computeKernel {
	k := &computeKernel{
		r: r, basePC: basePC, bodyLen: bodyLen, ilp: ilp,
		fpFrac: fpFrac, memFrac: memFrac, warmFrac: warmFrac, coldFrac: coldFrac,
		stride: r.Uint64() | 1,
	}
	for i := range k.recent {
		k.recent[i] = isa.IntReg(16 + i)
		k.recentFP[i] = isa.FPReg(16 + i)
	}
	return k
}

func (k *computeKernel) pickSrc(fp bool) isa.Reg {
	// Higher-ILP codes also carry more loop-invariant operands: with a
	// probability scaling with the ILP knob, read a never-written constant
	// register (no dependence at all).
	if k.r.Bool(float64(k.ilp-1) / 14) {
		if fp {
			return isa.FPReg(k.r.Intn(4))
		}
		return isa.Reg(1 + k.r.Intn(4))
	}
	d := 1 + k.r.Intn(k.ilp)
	if fp {
		return k.recentFP[(k.rf-d+64)%len(k.recentFP)]
	}
	return k.recent[(k.ri-d+64)%len(k.recent)]
}

func (k *computeKernel) nextDst(fp bool) isa.Reg {
	if fp {
		r := k.recentFP[k.rf%len(k.recentFP)]
		k.rf++
		return r
	}
	r := k.recent[k.ri%len(k.recent)]
	k.ri++
	return r
}

func (k *computeKernel) memAddr() uint64 {
	x := k.r.Float64()
	switch {
	case x < k.coldFrac:
		k.coldIdx = (k.coldIdx + k.stride) & (ColdBytes/blockBytes - 1)
		return ColdBase + k.coldIdx*blockBytes
	case x < k.coldFrac+k.warmFrac:
		k.warmIdx += 40 // a stride that wanders the warm set
		return WarmBase + (k.warmIdx*8)%WarmBytes
	default:
		k.hotIdx++
		return HotBase + (k.hotIdx*8)%HotBytes
	}
}

func (k *computeKernel) emit(in *isa.Inst) {
	pc := k.basePC + uint64(k.pos)*isa.InstBytes
	if k.pos == k.bodyLen-1 {
		*in = isa.Inst{PC: pc, Op: isa.OpBranch, Src1: isa.Reg(16),
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: true, Target: k.basePC}
		k.pos = 0
		return
	}
	k.pos++
	switch {
	case k.r.Bool(k.memFrac):
		if k.r.Bool(0.3) { // store
			*in = isa.Inst{PC: pc, Op: isa.OpStore, Src1: isa.Reg(2),
				Src2: k.pickSrc(false), Addr: k.memAddr()}
		} else {
			*in = isa.Inst{PC: pc, Op: isa.OpLoad, Src1: isa.Reg(2),
				Src2: isa.RegNone, Dst: k.nextDst(false), Addr: k.memAddr()}
		}
	case k.r.Bool(k.fpFrac):
		op := isa.OpFPAdd
		switch k.r.Intn(32) {
		case 0:
			op = isa.OpFPDiv
		case 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11:
			op = isa.OpFPMul
		}
		*in = isa.Inst{PC: pc, Op: op, Src1: k.pickSrc(true),
			Src2: k.pickSrc(true), Dst: k.nextDst(true)}
	default:
		op := isa.OpIntALU
		if k.r.Bool(0.04) {
			op = isa.OpIntMul
		}
		*in = isa.Inst{PC: pc, Op: op, Src1: k.pickSrc(false),
			Src2: k.pickSrc(false), Dst: k.nextDst(false)}
	}
}

// -------------------------------------------------------------- branchy --

// branchyKernel emits short basic blocks ending in conditional branches, a
// fraction of which have effectively random outcomes (mispredicts), plus
// occasional call/return pairs that exercise the RAS.
type branchyKernel struct {
	r      *rng.Source
	basePC uint64

	block    int
	hardFrac float64
	warmFrac float64
	coldFrac float64

	pos     int
	iter    uint64
	hotIdx  uint64
	warmIdx uint64
	coldIdx uint64
	stride  uint64

	callPhase int // 0 = none, 1..3 emitting call/sub/ret
}

func newBranchyKernel(r *rng.Source, basePC uint64, block int,
	hardFrac, warmFrac, coldFrac float64) *branchyKernel {
	return &branchyKernel{
		r: r, basePC: basePC, block: block,
		hardFrac: hardFrac, warmFrac: warmFrac, coldFrac: coldFrac,
		stride: r.Uint64() | 1,
	}
}

func (k *branchyKernel) memAddr() uint64 {
	x := k.r.Float64()
	switch {
	case x < k.coldFrac:
		k.coldIdx = (k.coldIdx + k.stride) & (ColdBytes/blockBytes - 1)
		return ColdBase + k.coldIdx*blockBytes
	case x < k.coldFrac+k.warmFrac:
		k.warmIdx += 56
		return WarmBase + (k.warmIdx*8)%WarmBytes
	default:
		k.hotIdx++
		return HotBase + (k.hotIdx*8)%HotBytes
	}
}

func (k *branchyKernel) emit(in *isa.Inst) {
	// Occasional call/return pair (one per 64 iterations).
	const subPC = 0x00F0_0000
	switch k.callPhase {
	case 1: // call
		pc := k.basePC + uint64(k.block)*isa.InstBytes
		*in = isa.Inst{PC: pc, Op: isa.OpBranch, Src1: isa.RegNone,
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: true, Target: subPC, CallRet: 1}
		k.callPhase = 2
		return
	case 2: // subroutine body
		*in = isa.Inst{PC: subPC, Op: isa.OpIntALU, Src1: isa.Reg(3),
			Src2: isa.Reg(4), Dst: isa.Reg(5)}
		k.callPhase = 3
		return
	case 3: // return
		*in = isa.Inst{PC: subPC + isa.InstBytes, Op: isa.OpBranch, Src1: isa.RegNone,
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: true,
			Target: k.basePC + uint64(k.block+1)*isa.InstBytes, CallRet: 2}
		k.callPhase = 0
		return
	}
	pc := k.basePC + uint64(k.pos)*isa.InstBytes
	if k.pos == k.block-1 {
		taken := k.iter%8 != 0 // learnable pattern
		if k.r.Bool(k.hardFrac) {
			taken = k.r.Bool(0.5) // data-dependent: effectively random
		}
		tgt := k.basePC
		*in = isa.Inst{PC: pc, Op: isa.OpBranch, Src1: isa.Reg(6),
			Src2: isa.RegNone, Dst: isa.RegNone, Taken: taken, Target: tgt}
		k.pos = 0
		k.iter++
		if k.iter%64 == 0 {
			k.callPhase = 1
		}
		return
	}
	k.pos++
	if k.r.Bool(0.25) {
		if k.r.Bool(0.3) {
			*in = isa.Inst{PC: pc, Op: isa.OpStore, Src1: isa.Reg(2),
				Src2: isa.Reg(7), Addr: k.memAddr()}
		} else {
			*in = isa.Inst{PC: pc, Op: isa.OpLoad, Src1: isa.Reg(2),
				Src2: isa.RegNone, Dst: isa.Reg(7), Addr: k.memAddr()}
		}
		return
	}
	*in = isa.Inst{PC: pc, Op: isa.OpIntALU, Src1: isa.Reg(7),
		Src2: isa.Reg(6), Dst: isa.Reg(6 + isa.Reg(k.pos%4))}
}
