package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestChaseAllHot(t *testing.T) {
	k := newChaseKernel(rng.New(20), chasePC, 1, 2, true, 1.0)
	in := &isa.Inst{}
	for i := 0; i < 400; i++ {
		k.emit(in)
		if in.Op == isa.OpLoad && in.Addr >= ColdBase {
			t.Fatalf("hotFrac=1 emitted a cold load: %#x", in.Addr)
		}
	}
}

func TestChaseZeroFiller(t *testing.T) {
	k := newChaseKernel(rng.New(21), chasePC, 2, 0, false, 0)
	in := &isa.Inst{}
	loads, branches := 0, 0
	for i := 0; i < 200; i++ {
		k.emit(in)
		switch in.Op {
		case isa.OpLoad:
			loads++
		case isa.OpBranch:
			branches++
		}
	}
	// Body = load + branch only.
	if loads != 100 || branches != 100 {
		t.Fatalf("mix = %d loads, %d branches", loads, branches)
	}
}

func TestChaseChainsIndependent(t *testing.T) {
	// With two chains, consecutive chase loads use different registers, so
	// the misses can overlap (MLP).
	k := newChaseKernel(rng.New(22), chasePC, 2, 0, false, 0)
	in := &isa.Inst{}
	var regs []isa.Reg
	for i := 0; i < 40 && len(regs) < 4; i++ {
		k.emit(in)
		if in.Op == isa.OpLoad {
			regs = append(regs, in.Dst)
		}
	}
	if regs[0] == regs[1] {
		t.Fatal("consecutive chase loads share a register — chains not independent")
	}
	if regs[0] != regs[2] || regs[1] != regs[3] {
		t.Fatal("chains do not alternate round-robin")
	}
}

func TestStreamSingleStream(t *testing.T) {
	k := newStreamKernel(rng.New(23), streamPC, 1, 1.0, 2, 2, false, 0.5, 4)
	in := &isa.Inst{}
	for i := 0; i < 500; i++ {
		k.emit(in) // must not panic with one stream
	}
}

func TestStreamFPDepChains(t *testing.T) {
	dep := newStreamKernel(rng.New(24), streamPC, 2, 1.0, 4, 0, true, 0, 4)
	in := &isa.Inst{}
	sawChain := false
	var lastDst isa.Reg = isa.RegNone
	for i := 0; i < 200; i++ {
		dep.emit(in)
		if in.Op == isa.OpFPAdd || in.Op == isa.OpFPMul {
			if in.Src2 == lastDst && lastDst != isa.RegNone {
				sawChain = true
			}
			lastDst = in.Dst
		} else {
			lastDst = isa.RegNone
		}
	}
	if !sawChain {
		t.Fatal("fpDep did not chain FP operations")
	}
}

func TestStreamSlicesBlockAligned(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7} {
		k := newStreamKernel(rng.New(25), streamPC, n, 1.0, 2, 0, false, 1.0, 4)
		for _, st := range k.streams {
			if st.base%blockBytes != 0 || st.size%blockBytes != 0 {
				t.Fatalf("n=%d: slice not block aligned: base=%#x size=%#x",
					n, st.base, st.size)
			}
		}
		if k.out.base%blockBytes != 0 {
			t.Fatalf("n=%d: out stream misaligned", n)
		}
	}
}

func TestComputeAllMemKinds(t *testing.T) {
	k := newComputeKernel(rng.New(26), computePC, 16, 3, 0, 1.0, 0.3, 0.1)
	in := &isa.Inst{}
	var hot, warm, cold int
	for i := 0; i < 30000; i++ {
		k.emit(in)
		if !in.Op.IsMem() {
			continue
		}
		switch {
		case in.Addr >= ColdBase:
			cold++
		case in.Addr >= WarmBase:
			warm++
		default:
			hot++
		}
	}
	if hot == 0 || warm == 0 || cold == 0 {
		t.Fatalf("regions not all exercised: hot=%d warm=%d cold=%d", hot, warm, cold)
	}
}

func TestComputeStoresAndLoads(t *testing.T) {
	k := newComputeKernel(rng.New(27), computePC, 16, 3, 0, 0.5, 0, 0)
	in := &isa.Inst{}
	loads, stores := 0, 0
	for i := 0; i < 5000; i++ {
		k.emit(in)
		switch in.Op {
		case isa.OpLoad:
			loads++
		case isa.OpStore:
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
	ratio := float64(stores) / float64(loads+stores)
	if ratio < 0.15 || ratio > 0.45 {
		t.Fatalf("store ratio = %.2f, want ~0.3", ratio)
	}
}

func TestBranchyPCsStayInKernelRegion(t *testing.T) {
	k := newBranchyKernel(rng.New(28), branchyPC, 6, 0.3, 0.2, 0.01)
	in := &isa.Inst{}
	for i := 0; i < 5000; i++ {
		k.emit(in)
		if in.PC < 0x00F0_0000 && (in.PC < branchyPC || in.PC > branchyPC+0x1000) {
			t.Fatalf("PC %#x outside kernel region", in.PC)
		}
	}
}

func TestBranchyColdRefsRare(t *testing.T) {
	k := newBranchyKernel(rng.New(29), branchyPC, 6, 0, 0, 0.01)
	in := &isa.Inst{}
	mem, cold := 0, 0
	for i := 0; i < 50000; i++ {
		k.emit(in)
		if in.Op.IsMem() {
			mem++
			if in.Addr >= ColdBase {
				cold++
			}
		}
	}
	frac := float64(cold) / float64(mem)
	if frac < 0.002 || frac > 0.03 {
		t.Fatalf("cold fraction = %.4f, want ~0.01", frac)
	}
}
