package workload

import "fmt"

// Profile parameterizes one synthetic SPEC2K benchmark. The paper-reference
// fields carry Table 2's measurements for reporting alongside ours.
type Profile struct {
	// Name is the SPEC2K benchmark name.
	Name string

	// IPCPaper, MRPaper and MRTKPaper are Table 2's baseline IPC, baseline
	// L2 demand misses per 1000 instructions, and the same under
	// Time-Keeping prefetching.
	IPCPaper, MRPaper, MRTKPaper float64

	// Kernel mixture weights (relative).
	WChase, WStream, WCompute, WBranchy float64

	// chase kernel knobs.
	ChaseChains    int
	ChaseFiller    int
	ChaseFillerDep bool
	ChaseHotFrac   float64

	// stream kernel knobs.
	StreamStreams  int
	StreamColdFrac float64
	StreamFPOps    int
	StreamALUOps   int
	StreamFPDep    bool
	StreamPFCover  float64
	StreamPFDist   int

	// compute kernel knobs.
	ComputeBodyLen  int
	ComputeILP      int
	ComputeFPFrac   float64
	ComputeMemFrac  float64
	ComputeWarmFrac float64
	ComputeColdFrac float64

	// branchy kernel knobs.
	BranchyBlock    int
	BranchyHardFrac float64
	BranchyWarmFrac float64
	BranchyColdFrac float64

	// PhaseLen is the mean kernel-phase length in instructions.
	PhaseLen int
}

// Validate reports a profile error, if any.
//
//vsv:coldpath
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty profile name")
	}
	total := p.WChase + p.WStream + p.WCompute + p.WBranchy
	if total <= 0 {
		return fmt.Errorf("workload %s: no kernel weights", p.Name)
	}
	if p.WChase > 0 && (p.ChaseChains < 1 || p.ChaseFiller < 0) {
		return fmt.Errorf("workload %s: bad chase knobs", p.Name)
	}
	if p.WStream > 0 && (p.StreamStreams < 1 || p.StreamFPOps < 0 || p.StreamPFDist < 1) {
		return fmt.Errorf("workload %s: bad stream knobs", p.Name)
	}
	if p.WCompute > 0 && (p.ComputeBodyLen < 2 || p.ComputeILP < 1) {
		return fmt.Errorf("workload %s: bad compute knobs", p.Name)
	}
	if p.WBranchy > 0 && p.BranchyBlock < 2 {
		return fmt.Errorf("workload %s: bad branchy knobs", p.Name)
	}
	if p.PhaseLen < 1 {
		return fmt.Errorf("workload %s: phase length %d < 1", p.Name, p.PhaseLen)
	}
	return nil
}

// HighMR reports whether the paper classifies the benchmark as high miss
// rate (MR > 4 per 1000 instructions, the left section of Figure 4).
func (p Profile) HighMR() bool { return p.MRPaper > 4.0 }

// profiles lists all 26 SPEC2K benchmarks in Table 2's (alphabetical)
// order, with kernel mixtures calibrated against Table 2's IPC and MR.
var profiles = []Profile{
	{
		Name: "ammp", IPCPaper: 0.59, MRPaper: 11.0, MRTKPaper: 0.5,
		WChase:      1,
		ChaseChains: 1, ChaseFiller: 30, ChaseFillerDep: true, ChaseHotFrac: 0.65,
		PhaseLen: 2000,
	},
	{
		Name: "applu", IPCPaper: 2.32, MRPaper: 10.1, MRTKPaper: 4.1,
		WStream:       1,
		StreamStreams: 4, StreamColdFrac: 0.5, StreamFPOps: 4, StreamALUOps: 4,
		StreamPFCover: 0.80, StreamPFDist: 16,
		PhaseLen: 2000,
	},
	{
		Name: "apsi", IPCPaper: 2.51, MRPaper: 1.4, MRTKPaper: 0.7,
		WStream: 0.35, WCompute: 0.65,
		StreamStreams: 4, StreamColdFrac: 0.25, StreamFPOps: 5, StreamALUOps: 6,
		StreamPFCover: 0.88, StreamPFDist: 10,
		ComputeBodyLen: 32, ComputeILP: 3, ComputeFPFrac: 0.35,
		ComputeMemFrac: 0.2, ComputeWarmFrac: 0.1,
		PhaseLen: 2000,
	},
	{
		Name: "art", IPCPaper: 1.36, MRPaper: 10.3, MRTKPaper: 11.7,
		WStream: 0.7, WCompute: 0.3,
		StreamStreams: 4, StreamColdFrac: 0.75, StreamFPOps: 4, StreamALUOps: 6,
		StreamFPDep:   true,
		StreamPFCover: 0.72, StreamPFDist: 8,
		ComputeBodyLen: 24, ComputeILP: 2, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.3,
		PhaseLen: 1500,
	},
	{
		Name: "bzip2", IPCPaper: 2.38, MRPaper: 0.5, MRTKPaper: 0.4,
		WCompute: 0.6, WBranchy: 0.4,
		ComputeBodyLen: 32, ComputeILP: 3, ComputeFPFrac: 0.02,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.15, ComputeColdFrac: 0.0035,
		BranchyBlock: 8, BranchyHardFrac: 0.14, BranchyWarmFrac: 0.1,
		PhaseLen: 2000,
	},
	{
		Name: "crafty", IPCPaper: 2.68, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute: 0.55, WBranchy: 0.45,
		ComputeBodyLen: 40, ComputeILP: 3, ComputeFPFrac: 0.02,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.05,
		BranchyBlock: 8, BranchyHardFrac: 0.14, BranchyWarmFrac: 0.05,
		PhaseLen: 2000,
	},
	{
		Name: "eon", IPCPaper: 3.13, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute: 0.85, WBranchy: 0.15,
		ComputeBodyLen: 48, ComputeILP: 3, ComputeFPFrac: 0.25,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.02,
		BranchyBlock: 10, BranchyHardFrac: 0.03,
		PhaseLen: 2000,
	},
	{
		Name: "equake", IPCPaper: 4.51, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute:       1,
		ComputeBodyLen: 64, ComputeILP: 6, ComputeFPFrac: 0.35,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.02,
		PhaseLen: 2000,
	},
	{
		Name: "facerec", IPCPaper: 3.02, MRPaper: 4.7, MRTKPaper: 2.3,
		WStream: 0.5, WCompute: 0.5,
		StreamStreams: 4, StreamColdFrac: 0.25, StreamFPOps: 6, StreamALUOps: 6,
		StreamPFCover: 0.55, StreamPFDist: 10,
		ComputeBodyLen: 48, ComputeILP: 7, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.2, ComputeWarmFrac: 0.05,
		PhaseLen: 2000,
	},
	{
		Name: "fma3d", IPCPaper: 4.35, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute:       1,
		ComputeBodyLen: 64, ComputeILP: 6, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.22, ComputeWarmFrac: 0.02,
		PhaseLen: 2000,
	},
	{
		Name: "galgel", IPCPaper: 2.21, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute:       1,
		ComputeBodyLen: 32, ComputeILP: 4, ComputeFPFrac: 0.45,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.08,
		PhaseLen: 2000,
	},
	{
		Name: "gap", IPCPaper: 3.00, MRPaper: 0.5, MRTKPaper: 0.3,
		WCompute: 0.8, WBranchy: 0.2,
		ComputeBodyLen: 48, ComputeILP: 3, ComputeFPFrac: 0.05,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.08, ComputeColdFrac: 0.002,
		BranchyBlock: 9, BranchyHardFrac: 0.05,
		PhaseLen: 2000,
	},
	{
		Name: "gcc", IPCPaper: 2.27, MRPaper: 0.1, MRTKPaper: 0.1,
		WCompute: 0.5, WBranchy: 0.5,
		ComputeBodyLen: 32, ComputeILP: 3, ComputeFPFrac: 0.01,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.1, ComputeColdFrac: 0.0006,
		BranchyBlock: 7, BranchyHardFrac: 0.16, BranchyWarmFrac: 0.08,
		PhaseLen: 1200,
	},
	{
		Name: "gzip", IPCPaper: 2.31, MRPaper: 0.1, MRTKPaper: 0.1,
		WCompute: 0.5, WBranchy: 0.5,
		ComputeBodyLen: 32, ComputeILP: 2, ComputeFPFrac: 0.0,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.2, ComputeColdFrac: 0.0006,
		BranchyBlock: 8, BranchyHardFrac: 0.35, BranchyWarmFrac: 0.15,
		PhaseLen: 2000,
	},
	{
		Name: "lucas", IPCPaper: 1.34, MRPaper: 10.2, MRTKPaper: 4.2,
		WStream:       1,
		StreamStreams: 2, StreamColdFrac: 1.0, StreamFPOps: 6, StreamALUOps: 6,
		StreamFPDep:   true,
		StreamPFCover: 0.78, StreamPFDist: 10,
		PhaseLen: 2000,
	},
	{
		Name: "mcf", IPCPaper: 0.29, MRPaper: 67.4, MRTKPaper: 48.2,
		WChase:      1,
		ChaseChains: 3, ChaseFiller: 12, ChaseFillerDep: true, ChaseHotFrac: 0.05,
		PhaseLen: 2000,
	},
	{
		Name: "mesa", IPCPaper: 3.64, MRPaper: 0.3, MRTKPaper: 0.2,
		WCompute:       1,
		ComputeBodyLen: 56, ComputeILP: 5, ComputeFPFrac: 0.3,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.04, ComputeColdFrac: 0.0012,
		PhaseLen: 2000,
	},
	{
		Name: "mgrid", IPCPaper: 4.17, MRPaper: 1.5, MRTKPaper: 0.8,
		WStream: 0.5, WCompute: 0.5,
		StreamStreams: 4, StreamColdFrac: 0.25, StreamFPOps: 8, StreamALUOps: 8,
		StreamPFCover: 0.88, StreamPFDist: 12,
		ComputeBodyLen: 64, ComputeILP: 8, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.22, ComputeWarmFrac: 0.02,
		PhaseLen: 2000,
	},
	{
		Name: "parser", IPCPaper: 1.68, MRPaper: 0.6, MRTKPaper: 0.7,
		WCompute: 0.3, WBranchy: 0.7,
		ComputeBodyLen: 24, ComputeILP: 3, ComputeFPFrac: 0.01,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.15, ComputeColdFrac: 0.003,
		BranchyBlock: 7, BranchyHardFrac: 0.22, BranchyWarmFrac: 0.12, BranchyColdFrac: 0.002,
		PhaseLen: 1200,
	},
	{
		Name: "perlbmk", IPCPaper: 1.41, MRPaper: 1.3, MRTKPaper: 0.6,
		WCompute: 0.25, WBranchy: 0.75,
		ComputeBodyLen: 24, ComputeILP: 3, ComputeFPFrac: 0.01,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.15, ComputeColdFrac: 0.008,
		BranchyBlock: 7, BranchyHardFrac: 0.27, BranchyWarmFrac: 0.12, BranchyColdFrac: 0.005,
		PhaseLen: 1200,
	},
	{
		Name: "sixtrack", IPCPaper: 3.64, MRPaper: 0.0, MRTKPaper: 0.0,
		WCompute:       1,
		ComputeBodyLen: 56, ComputeILP: 6, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.2, ComputeWarmFrac: 0.02,
		PhaseLen: 2000,
	},
	{
		Name: "swim", IPCPaper: 3.81, MRPaper: 5.8, MRTKPaper: 1.4,
		WStream: 0.55, WCompute: 0.45,
		StreamStreams: 4, StreamColdFrac: 0.5, StreamFPOps: 6, StreamALUOps: 6,
		StreamPFCover: 0.80, StreamPFDist: 12,
		ComputeBodyLen: 64, ComputeILP: 8, ComputeFPFrac: 0.45,
		ComputeMemFrac: 0.15, ComputeWarmFrac: 0.02,
		PhaseLen: 2000,
	},
	{
		Name: "twolf", IPCPaper: 1.42, MRPaper: 0.0, MRTKPaper: 0.0,
		WBranchy:     1,
		BranchyBlock: 7, BranchyHardFrac: 0.22, BranchyWarmFrac: 0.2,
		PhaseLen: 2000,
	},
	{
		Name: "vortex", IPCPaper: 2.31, MRPaper: 0.2, MRTKPaper: 0.2,
		WCompute: 0.6, WBranchy: 0.4,
		ComputeBodyLen: 40, ComputeILP: 4, ComputeFPFrac: 0.02,
		ComputeMemFrac: 0.35, ComputeWarmFrac: 0.1, ComputeColdFrac: 0.001,
		BranchyBlock: 8, BranchyHardFrac: 0.25, BranchyWarmFrac: 0.1,
		PhaseLen: 2000,
	},
	{
		Name: "vpr", IPCPaper: 1.25, MRPaper: 2.0, MRTKPaper: 2.1,
		WCompute: 0.25, WBranchy: 0.75,
		ComputeBodyLen: 24, ComputeILP: 2, ComputeFPFrac: 0.15,
		ComputeMemFrac: 0.3, ComputeWarmFrac: 0.2, ComputeColdFrac: 0.011,
		BranchyBlock: 6, BranchyHardFrac: 0.30, BranchyWarmFrac: 0.2, BranchyColdFrac: 0.008,
		PhaseLen: 1200,
	},
	{
		Name: "wupwise", IPCPaper: 4.58, MRPaper: 0.5, MRTKPaper: 0.4,
		WCompute:       1,
		ComputeBodyLen: 64, ComputeILP: 7, ComputeFPFrac: 0.4,
		ComputeMemFrac: 0.25, ComputeWarmFrac: 0.02, ComputeColdFrac: 0.0018,
		PhaseLen: 2000,
	},
}

// Profiles returns all 26 benchmark profiles (a fresh copy each call).
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByName returns the profile with the given benchmark name.
//
//vsv:coldpath
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in table order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// HighMRNames returns the benchmarks the paper classes as MR > 4 (the
// Figure 5/6 subset).
func HighMRNames() []string {
	var out []string
	for _, p := range profiles {
		if p.HighMR() {
			out = append(out, p.Name)
		}
	}
	return out
}
