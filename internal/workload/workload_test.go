package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

func collect(g *Generator, n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("profile count = %d, want 26 (full SPEC2K)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestHighMRSubsetMatchesPaper(t *testing.T) {
	// The paper's Figures 5/6 subset: mcf, ammp, art, lucas, applu, swim,
	// facerec (MR > 4).
	want := map[string]bool{
		"mcf": true, "ammp": true, "art": true, "lucas": true,
		"applu": true, "swim": true, "facerec": true,
	}
	got := HighMRNames()
	if len(got) != len(want) {
		t.Fatalf("high-MR set = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected high-MR benchmark %s", n)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNamesOrderStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != 26 {
		t.Fatalf("names = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("name order unstable")
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := collect(NewGenerator(p), 5000)
	b := collect(NewGenerator(p), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeededGeneratorsDiffer(t *testing.T) {
	p, _ := ByName("gcc")
	a := collect(NewGeneratorSeed(p, 0), 2000)
	b := collect(NewGeneratorSeed(p, 1), 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 1500 {
		t.Fatalf("seeds 0 and 1 coincide on %d/2000 instructions", same)
	}
	// Seed 0 must equal the canonical generator.
	c := collect(NewGenerator(p), 2000)
	d := collect(NewGeneratorSeed(p, 0), 2000)
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("seed 0 differs from canonical stream")
		}
	}
}

func TestSeededGeneratorsSameMixture(t *testing.T) {
	// Different seeds must keep the calibrated instruction mixture: count
	// memory-op fractions across seeds. Use a single-kernel benchmark so
	// phase-selection variance does not dominate the sample.
	p, _ := ByName("lucas")
	frac := func(seed uint64) float64 {
		g := NewGeneratorSeed(p, seed)
		insts := collect(g, 30000)
		mem := 0
		for i := range insts {
			if insts[i].Op.IsMem() {
				mem++
			}
		}
		return float64(mem) / float64(len(insts))
	}
	f0, f1 := frac(0), frac(12345)
	if f1 < f0*0.85 || f1 > f0*1.15 {
		t.Fatalf("memory-op fraction shifted across seeds: %.3f vs %.3f", f0, f1)
	}
}

func TestGeneratorsDifferAcrossBenchmarks(t *testing.T) {
	p1, _ := ByName("mcf")
	p2, _ := ByName("swim")
	a := collect(NewGenerator(p1), 1000)
	b := collect(NewGenerator(p2), 1000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("mcf and swim streams coincide on %d/1000 instructions", same)
	}
}

func TestChaseKernelStructure(t *testing.T) {
	k := newChaseKernel(rng.New(1), chasePC, 2, 5, true, 0)
	var loads, branches, fillers int
	var prevDst isa.Reg = isa.RegNone
	in := &isa.Inst{}
	for i := 0; i < 700; i++ {
		k.emit(in)
		switch in.Op {
		case isa.OpLoad:
			loads++
			// The chase load must depend on itself (pointer chain).
			if in.Src1 != in.Dst {
				t.Fatalf("chase load not self-dependent: %v", in)
			}
			if in.Addr < ColdBase || in.Addr >= ColdBase+ColdBytes {
				t.Fatalf("chase address outside cold region: %#x", in.Addr)
			}
			prevDst = in.Dst
		case isa.OpBranch:
			branches++
			if !in.Taken || in.Target != chasePC {
				t.Fatalf("chase loop branch wrong: %v", in)
			}
		case isa.OpIntALU:
			fillers++
			if prevDst != isa.RegNone && in.Src1 != prevDst {
				t.Fatalf("dependent filler does not read the chase register: %v", in)
			}
		}
	}
	// Body = 1 load + 5 fillers + 1 branch = 7 instructions.
	if loads == 0 || branches == 0 || fillers != 5*loads {
		t.Fatalf("mix: loads=%d fillers=%d branches=%d", loads, fillers, branches)
	}
}

func TestChaseHotFraction(t *testing.T) {
	k := newChaseKernel(rng.New(2), chasePC, 1, 0, false, 0.5)
	in := &isa.Inst{}
	hot, cold := 0, 0
	for i := 0; i < 4000; i++ {
		k.emit(in)
		if in.Op != isa.OpLoad {
			continue
		}
		if in.Addr >= HotBase && in.Addr < HotBase+HotBytes {
			hot++
		} else {
			cold++
		}
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("hot fraction = %v, want ~0.5", frac)
	}
}

func TestChaseAddressesCoverFootprint(t *testing.T) {
	k := newChaseKernel(rng.New(3), chasePC, 1, 0, false, 0)
	in := &isa.Inst{}
	seen := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k.emit(in)
		if in.Op == isa.OpLoad {
			seen[in.Addr] = true
		}
	}
	// An odd-stride walk over a power-of-two ring never revisits early:
	// every chase address in this horizon is distinct.
	if len(seen) < 900 {
		t.Fatalf("only %d distinct chase addresses in 1000 loads", len(seen))
	}
}

func TestStreamKernelPrefetchesAndStrides(t *testing.T) {
	k := newStreamKernel(rng.New(4), streamPC, 4, 0.5, 4, 0, false, 1.0, 8)
	in := &isa.Inst{}
	var loads, prefetches, stores, branches, fp int
	lastAddr := map[isa.Reg]uint64{}
	for i := 0; i < 5000; i++ {
		k.emit(in)
		switch in.Op {
		case isa.OpLoad:
			loads++
			if prev, ok := lastAddr[in.Dst]; ok && in.Addr != prev+8 && in.Addr > prev {
				t.Fatalf("stream load stride broken: %#x after %#x", in.Addr, prev)
			}
			lastAddr[in.Dst] = in.Addr
		case isa.OpPrefetch:
			prefetches++
			if in.Addr%blockBytes != 0 {
				t.Fatalf("prefetch not block-aligned: %#x", in.Addr)
			}
		case isa.OpStore:
			stores++
		case isa.OpBranch:
			branches++
		case isa.OpFPAdd, isa.OpFPMul:
			fp++
		}
	}
	if loads == 0 || stores == 0 || branches == 0 || fp == 0 {
		t.Fatalf("mix: loads=%d stores=%d branches=%d fp=%d", loads, stores, branches, fp)
	}
	// Full coverage on 2 cold streams advancing 8B/iteration: one prefetch
	// per 4 iterations per cold stream → prefetches ≈ loads/8.
	if prefetches == 0 {
		t.Fatal("no prefetches despite full coverage")
	}
	ratio := float64(prefetches) / float64(loads)
	if ratio < 0.05 || ratio > 0.25 {
		t.Fatalf("prefetch/load ratio = %v", ratio)
	}
}

func TestStreamZeroCoverageNoPrefetches(t *testing.T) {
	k := newStreamKernel(rng.New(5), streamPC, 4, 0.5, 4, 0, false, 0, 8)
	in := &isa.Inst{}
	for i := 0; i < 3000; i++ {
		k.emit(in)
		if in.Op == isa.OpPrefetch {
			t.Fatal("prefetch emitted with zero coverage")
		}
	}
}

func TestStreamWarmStreamsStayWarm(t *testing.T) {
	k := newStreamKernel(rng.New(6), streamPC, 4, 0.5, 2, 0, false, 0, 8)
	in := &isa.Inst{}
	for i := 0; i < 5000; i++ {
		k.emit(in)
		if in.Op == isa.OpLoad {
			inCold := in.Addr >= ColdBase && in.Addr < ColdBase+ColdBytes
			inWarm := in.Addr >= WarmBase && in.Addr < WarmBase+WarmBytes
			if !inCold && !inWarm {
				t.Fatalf("stream load outside cold/warm regions: %#x", in.Addr)
			}
		}
	}
}

func TestComputeKernelILPAndMix(t *testing.T) {
	k := newComputeKernel(rng.New(7), computePC, 32, 4, 0.3, 0.25, 0.1, 0)
	in := &isa.Inst{}
	var alu, fp, mem, branches int
	for i := 0; i < 8000; i++ {
		k.emit(in)
		switch {
		case in.Op == isa.OpBranch:
			branches++
			if in.Target != computePC || !in.Taken {
				t.Fatalf("compute loop branch wrong: %v", in)
			}
		case in.Op.IsMem():
			mem++
		case in.Op.IsFP():
			fp++
		default:
			alu++
		}
	}
	total := float64(alu + fp + mem + branches)
	if branches == 0 {
		t.Fatal("no loop branches")
	}
	if f := float64(mem) / total; f < 0.15 || f > 0.35 {
		t.Fatalf("mem fraction = %v, want ~0.25", f)
	}
	if f := float64(fp) / total; f < 0.1 || f > 0.4 {
		t.Fatalf("fp fraction = %v", f)
	}
}

func TestComputeColdFracProducesColdRefs(t *testing.T) {
	k := newComputeKernel(rng.New(8), computePC, 32, 4, 0, 0.3, 0, 0.05)
	in := &isa.Inst{}
	cold, mem := 0, 0
	for i := 0; i < 20000; i++ {
		k.emit(in)
		if in.Op.IsMem() {
			mem++
			if in.Addr >= ColdBase {
				cold++
			}
		}
	}
	frac := float64(cold) / float64(mem)
	if frac < 0.02 || frac > 0.09 {
		t.Fatalf("cold fraction of mem refs = %v, want ~0.05", frac)
	}
}

func TestBranchyKernelHardBranches(t *testing.T) {
	easy := newBranchyKernel(rng.New(9), branchyPC, 8, 0, 0, 0)
	hard := newBranchyKernel(rng.New(9), branchyPC, 8, 1.0, 0, 0)
	in := &isa.Inst{}
	flips := func(k *branchyKernel) int {
		var prev, n, seen int
		for i := 0; i < 8000; i++ {
			k.emit(in)
			if in.Op != isa.OpBranch || in.CallRet != 0 {
				continue
			}
			cur := 0
			if in.Taken {
				cur = 1
			}
			if seen > 0 && cur != prev {
				n++
			}
			prev = cur
			seen++
		}
		return n
	}
	if fe, fh := flips(easy), flips(hard); fh <= fe {
		t.Fatalf("hard branches no more variable than easy: %d vs %d", fh, fe)
	}
}

func TestBranchyCallReturnPairs(t *testing.T) {
	k := newBranchyKernel(rng.New(10), branchyPC, 6, 0, 0, 0)
	in := &isa.Inst{}
	calls, rets := 0, 0
	for i := 0; i < 50000; i++ {
		k.emit(in)
		switch in.CallRet {
		case 1:
			calls++
		case 2:
			rets++
			if in.Op != isa.OpBranch || !in.Taken {
				t.Fatalf("return malformed: %v", in)
			}
		}
	}
	if calls == 0 || calls != rets {
		t.Fatalf("calls=%d rets=%d", calls, rets)
	}
}

func TestGeneratorMixturePhases(t *testing.T) {
	p, _ := ByName("apsi") // stream + compute mixture
	g := NewGenerator(p)
	insts := collect(g, 30000)
	streamSeen, computeSeen := false, false
	for i := range insts {
		pc := insts[i].PC
		if pc >= streamPC && pc < streamPC+0x8000 {
			streamSeen = true
		}
		if pc >= computePC && pc < computePC+0x8000 {
			computeSeen = true
		}
	}
	if !streamSeen || !computeSeen {
		t.Fatalf("mixture did not visit both kernels: stream=%v compute=%v",
			streamSeen, computeSeen)
	}
}

func TestGeneratorPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile accepted")
		}
	}()
	NewGenerator(Profile{Name: "bad"})
}

func TestMemoryRegionsDisjoint(t *testing.T) {
	if HotBase+HotBytes > WarmBase || WarmBase+WarmBytes > ColdBase {
		t.Fatal("memory regions overlap")
	}
	// Cold footprint must exceed the 2 MB L2 by a wide margin.
	if ColdBytes < 16<<20 {
		t.Fatal("cold region too small to guarantee L2 misses")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := ByName("gcc")
	g := NewGenerator(p)
	in := &isa.Inst{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(in)
	}
}

func TestGeneratorProfileAccessor(t *testing.T) {
	p, _ := ByName("mcf")
	g := NewGenerator(p)
	if g.Profile().Name != "mcf" {
		t.Fatal("profile accessor wrong")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []Profile{
		{Name: "x", WChase: 1, ChaseChains: 0, PhaseLen: 10},
		{Name: "x", WStream: 1, StreamStreams: 0, StreamPFDist: 1, PhaseLen: 10},
		{Name: "x", WCompute: 1, ComputeBodyLen: 1, ComputeILP: 1, PhaseLen: 10},
		{Name: "x", WBranchy: 1, BranchyBlock: 1, PhaseLen: 10},
		{Name: "x", WChase: 1, ChaseChains: 1, PhaseLen: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}
