#!/bin/sh
# bench_compare.sh — cross-PR benchmark regression gate.
#
# Diffs two committed benchmark documents (default: the previous PR's
# BENCH_2.json against this PR's BENCH_3.json) on ns/op and fails on any
# regression beyond the threshold. Benchmarks new in the later document
# (no baseline) or retired from it are reported but never fatal.
#
# Usage: sh scripts/bench_compare.sh [OLD.json NEW.json [max-regress-pct]]
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
OLD=${1:-BENCH_2.json}
NEW=${2:-BENCH_3.json}
PCT=${3:-10}

exec $GO run ./cmd/benchjson -compare -max-regress-pct "$PCT" "$OLD" "$NEW"
