#!/bin/sh
# bench_compare.sh — cross-PR benchmark regression gate.
#
# Diffs two committed benchmark documents (default: the previous PR's
# BENCH_4.json against this PR's BENCH_5.json) on ns/op (lower is better)
# and runs/sec (higher is better) and fails on any regression beyond the
# threshold. Benchmarks new in the later document (no baseline) or retired
# from it are reported but never fatal, and benchmarks under the benchjson
# noise floor never fail the gate.
#
# Usage: sh scripts/bench_compare.sh [OLD.json NEW.json [max-regress-pct]]
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
OLD=${1:-BENCH_4.json}
NEW=${2:-BENCH_5.json}
PCT=${3:-10}

exec $GO run ./cmd/benchjson -compare -max-regress-pct "$PCT" "$OLD" "$NEW"
