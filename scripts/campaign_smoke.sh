#!/bin/sh
# campaign_smoke.sh — end-to-end smoke of the multi-process campaign driver
# (cmd/vsvcampaign).
#
# Runs the same small campaign twice: once sequentially through
# cmd/experiments, once through cmd/vsvcampaign forked across 4 worker
# processes sharing a work-stealing ledger. The two stdout streams must be
# byte-identical: process count is an execution detail, never a different
# computation. A second pass kills one worker mid-campaign (the chaos
# drill) and demands the same bytes again — a crashed worker's claimed
# points must be re-stolen, not lost.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
PROCS=${PROCS:-4}
WARMUP=8000
INSTRUCTIONS=40000
EXP=table2

workdir=$(mktemp -d)
cleanup() {
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "campaign-smoke: building vsvcampaign and experiments"
$GO build -o "$workdir/vsvcampaign" ./cmd/vsvcampaign
$GO build -o "$workdir/experiments" ./cmd/experiments

echo "campaign-smoke: sequential reference ($EXP)"
"$workdir/experiments" -exp "$EXP" -warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	>"$workdir/seq.txt" 2>/dev/null

echo "campaign-smoke: $PROCS-process campaign"
"$workdir/vsvcampaign" -exp "$EXP" -procs "$PROCS" \
	-warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	-ledger "$workdir/ledger.jsonl" \
	>"$workdir/multi.txt" 2>"$workdir/multi.log"

if ! cmp -s "$workdir/seq.txt" "$workdir/multi.txt"; then
	echo "FAIL: $PROCS-process output differs from the sequential run" >&2
	diff "$workdir/seq.txt" "$workdir/multi.txt" >&2 || true
	exit 1
fi

echo "campaign-smoke: chaos drill (kill worker 1 mid-campaign)"
"$workdir/vsvcampaign" -exp "$EXP" -procs "$PROCS" \
	-warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	-ledger "$workdir/chaos-ledger.jsonl" \
	-chaos-kill-worker 1 -chaos-kill-after 3 -claim-ttl 2s \
	>"$workdir/chaos.txt" 2>"$workdir/chaos.log"

grep -q "chaos kill" "$workdir/chaos.log" || {
	echo "FAIL: chaos worker never reported its kill" >&2
	cat "$workdir/chaos.log" >&2
	exit 1
}
if ! cmp -s "$workdir/seq.txt" "$workdir/chaos.txt"; then
	echo "FAIL: post-crash output differs from the sequential run" >&2
	diff "$workdir/seq.txt" "$workdir/chaos.txt" >&2 || true
	exit 1
fi

echo "campaign-smoke: OK ($(wc -c <"$workdir/seq.txt") bytes byte-identical sequential, $PROCS-process, and post-crash)"
