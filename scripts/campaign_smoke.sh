#!/bin/sh
# campaign_smoke.sh — end-to-end smoke of the multi-process campaign driver
# (cmd/vsvcampaign).
#
# Runs the same small campaign twice: once sequentially through
# cmd/experiments, once through cmd/vsvcampaign forked across 4 worker
# processes sharing a work-stealing ledger. The two stdout streams must be
# byte-identical: process count is an execution detail, never a different
# computation. A second pass kills one worker mid-campaign (the chaos
# drill) and demands the same bytes again — a crashed worker's claimed
# points must be re-stolen, not lost. A third pass kills the campaign
# *server* (cmd/vsvserve, kill -9, no shutdown) mid-job and restarts it on
# the same durable journal: the interrupted job must resume under its
# original id and serve the same bytes once more.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
PROCS=${PROCS:-4}
WARMUP=8000
INSTRUCTIONS=40000
EXP=table2

workdir=$(mktemp -d)
serverpid=""
cleanup() {
	[ -n "$serverpid" ] && kill "$serverpid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

CURL="curl -sS --fail-with-body"

# start_server LOGFILE: boots vsvserve on an ephemeral port against the
# shared journal and sets $serverpid and $base. Runs in the main shell
# (not a command substitution) so both variables survive; the server's
# stdout goes to /dev/null so nothing holds inherited pipes open.
start_server() {
	log=$1
	"$workdir/vsvserve" -addr 127.0.0.1:0 -parallel 4 \
		-journal "$workdir/jobs.journal" >/dev/null 2>"$log" &
	serverpid=$!
	base=""
	for _ in $(seq 1 50); do
		base=$(sed -n 's/^vsvserve: listening on //p' "$log")
		[ -n "$base" ] && break
		kill -0 "$serverpid" 2>/dev/null || { cat "$log" >&2; exit 1; }
		sleep 0.1
	done
	[ -n "$base" ] || { echo "campaign-smoke: server never bound" >&2; exit 1; }
}

echo "campaign-smoke: building vsvcampaign and experiments"
$GO build -o "$workdir/vsvcampaign" ./cmd/vsvcampaign
$GO build -o "$workdir/experiments" ./cmd/experiments

echo "campaign-smoke: sequential reference ($EXP)"
"$workdir/experiments" -exp "$EXP" -warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	>"$workdir/seq.txt" 2>/dev/null

echo "campaign-smoke: $PROCS-process campaign"
"$workdir/vsvcampaign" -exp "$EXP" -procs "$PROCS" \
	-warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	-ledger "$workdir/ledger.jsonl" \
	>"$workdir/multi.txt" 2>"$workdir/multi.log"

if ! cmp -s "$workdir/seq.txt" "$workdir/multi.txt"; then
	echo "FAIL: $PROCS-process output differs from the sequential run" >&2
	diff "$workdir/seq.txt" "$workdir/multi.txt" >&2 || true
	exit 1
fi

echo "campaign-smoke: chaos drill (kill worker 1 mid-campaign)"
"$workdir/vsvcampaign" -exp "$EXP" -procs "$PROCS" \
	-warmup "$WARMUP" -instructions "$INSTRUCTIONS" \
	-ledger "$workdir/chaos-ledger.jsonl" \
	-chaos-kill-worker 1 -chaos-kill-after 3 -claim-ttl 2s \
	>"$workdir/chaos.txt" 2>"$workdir/chaos.log"

grep -q "chaos kill" "$workdir/chaos.log" || {
	echo "FAIL: chaos worker never reported its kill" >&2
	cat "$workdir/chaos.log" >&2
	exit 1
}
if ! cmp -s "$workdir/seq.txt" "$workdir/chaos.txt"; then
	echo "FAIL: post-crash output differs from the sequential run" >&2
	diff "$workdir/seq.txt" "$workdir/chaos.txt" >&2 || true
	exit 1
fi

echo "campaign-smoke: crash-recovery drill (kill -9 vsvserve mid-job, restart on the journal)"
$GO build -o "$workdir/vsvserve" ./cmd/vsvserve

start_server "$workdir/serve1.log"
id=$($CURL -X POST "$base/v1/jobs" -d "{
	\"v\": 1,
	\"artefacts\": [\"$EXP\"],
	\"warmup_instructions\": $WARMUP,
	\"measure_instructions\": $INSTRUCTIONS
}" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "FAIL: submission returned no job id" >&2; exit 1; }

# Kill the moment the job is running: no graceful shutdown, no flush —
# only the fsynced submit record survives.
for _ in $(seq 1 100); do
	state=$($CURL "$base/v1/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
	[ "$state" = "running" ] && break
	sleep 0.05
done
kill -9 "$serverpid"
wait "$serverpid" 2>/dev/null || true
serverpid=""
echo "campaign-smoke: killed vsvserve (-9) while $id was $state"

start_server "$workdir/serve2.log"
grep -q "journal replay" "$workdir/serve2.log" || {
	echo "FAIL: restarted server did not replay the journal" >&2
	cat "$workdir/serve2.log" >&2
	exit 1
}

# The same job id resumes without resubmission and runs to completion.
state=""
for _ in $(seq 1 300); do
	state=$($CURL "$base/v1/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed | cancelled)
		echo "FAIL: recovered job ended $state" >&2
		$CURL "$base/v1/jobs/$id" >&2
		exit 1
		;;
	esac
	sleep 0.2
done
[ "$state" = "done" ] || { echo "FAIL: recovered job stuck in state '$state'" >&2; exit 1; }

$CURL "$base/v1/jobs/$id/events" | grep -q '"type":"resumed"' || {
	echo "FAIL: recovered job's event log lacks the resumed record" >&2
	$CURL "$base/v1/jobs/$id/events" >&2
	exit 1
}

$CURL "$base/v1/jobs/$id/artefacts?format=text" >"$workdir/recovered.txt"
if ! cmp -s "$workdir/seq.txt" "$workdir/recovered.txt"; then
	echo "FAIL: post-kill-9 recovered output differs from the sequential run" >&2
	diff "$workdir/seq.txt" "$workdir/recovered.txt" >&2 || true
	exit 1
fi
kill "$serverpid" 2>/dev/null || true
wait "$serverpid" 2>/dev/null || true
serverpid=""

echo "campaign-smoke: OK ($(wc -c <"$workdir/seq.txt") bytes byte-identical sequential, $PROCS-process, post-crash, and post-kill-9 recovery)"
