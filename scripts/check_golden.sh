#!/bin/sh
# check_golden.sh — golden-output regression gate.
#
# Runs the short-mode experiment suite (every table and figure at reduced
# scale) and compares the SHA-256 of its stdout against the committed
# digest — twice: once with the event-driven fast-forward enabled (the
# default) and once with -slowtick forcing one tick() per cycle. Both runs
# must match the same committed hash, which is the proof that the
# fast-forward path is bit-identical physics, not an approximation.
#
# The simulator is deterministic, so any digest drift means a behavior
# change: performance work must keep this green, and intentional physics
# changes must update testdata/golden_short.sha256 in the same commit with
# an explanation.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
GOLDEN_FILE=testdata/golden_short.sha256

want=$(cat "$GOLDEN_FILE")

check() {
	label=$1
	shift
	got=$($GO run ./cmd/experiments -exp all -warmup 5000 -instructions 20000 -parallel 4 "$@" |
		sha256sum | cut -d' ' -f1)
	if [ "$got" != "$want" ]; then
		echo "FAIL: short-mode experiment output drifted ($label)" >&2
		echo "  want $want" >&2
		echo "  got  $got" >&2
		echo "If the change is intentional, update $GOLDEN_FILE." >&2
		exit 1
	fi
	echo "golden output OK, $label ($got)"
}

check "fast-forward"
check "slow-tick" -slowtick
