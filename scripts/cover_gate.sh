#!/bin/sh
# cover_gate.sh — fail when statement coverage of ./internal/... drops
# below the committed floor.
#
# The floor is deliberately a little under the measured total (89.3% when
# this gate was committed) so routine churn does not trip it, while a
# change that lands a meaningful amount of untested code does. Raise the
# floor when coverage rises; never lower it to make a PR pass.
set -eu

FLOOR=87.0
PROFILE="${COVER_PROFILE:-cover.out}"

go test ./internal/... -coverprofile="$PROFILE" > /dev/null

# The lint fixture packages under internal/lint/testdata are analyzer
# *inputs*, deliberately full of never-executed bad code; `go test`
# skips testdata dirs today, but keep the floor honest if a toolchain
# change or profile merge ever sweeps them in.
grep -v '/internal/lint/testdata/' "$PROFILE" > "$PROFILE.filtered" \
    && mv "$PROFILE.filtered" "$PROFILE"

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
if [ -z "$TOTAL" ]; then
    echo "cover_gate: could not extract total coverage from $PROFILE" >&2
    exit 2
fi

echo "cover_gate: total statement coverage ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN { exit (total+0 < floor+0) ? 1 : 0 }' || {
    echo "cover_gate: coverage ${TOTAL}% is below the committed floor ${FLOOR}%" >&2
    exit 1
}
