#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the campaign service (cmd/vsvserve).
#
# Boots the server on an ephemeral port, drives one small campaign through
# the HTTP API with curl (submit → poll → fetch), and diffs the fetched
# artefact text against the same campaign run directly through
# cmd/experiments. The two byte streams must be identical: the service is a
# transport over the engine, never a different computation.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
CURL="curl -sS --fail-with-body"
WARMUP=2000
INSTRUCTIONS=8000
BENCHES=mcf,eon

workdir=$(mktemp -d)
serverpid=""
cleanup() {
	[ -n "$serverpid" ] && kill "$serverpid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building vsvserve"
$GO build -o "$workdir/vsvserve" ./cmd/vsvserve

"$workdir/vsvserve" -addr 127.0.0.1:0 -parallel 4 2>"$workdir/server.log" &
serverpid=$!

# The server prints "vsvserve: listening on http://..." once bound.
base=""
for _ in $(seq 1 50); do
	base=$(sed -n 's/^vsvserve: listening on //p' "$workdir/server.log")
	[ -n "$base" ] && break
	kill -0 "$serverpid" 2>/dev/null || { cat "$workdir/server.log" >&2; exit 1; }
	sleep 0.1
done
[ -n "$base" ] || { echo "serve-smoke: server never bound" >&2; exit 1; }
echo "serve-smoke: server at $base"

$CURL "$base/v1/healthz" | grep -q '"status": "ok"' || {
	echo "serve-smoke: healthz failed" >&2
	exit 1
}

benches_json=$(echo "$BENCHES" | sed 's/,/","/g')
id=$($CURL -X POST "$base/v1/jobs" -d "{
	\"v\": 1,
	\"artefacts\": [\"fig4\", \"summary\"],
	\"benchmarks\": [\"$benches_json\"],
	\"warmup_instructions\": $WARMUP,
	\"measure_instructions\": $INSTRUCTIONS
}" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "serve-smoke: submission returned no job id" >&2; exit 1; }
echo "serve-smoke: submitted $id"

state=""
for _ in $(seq 1 300); do
	state=$($CURL "$base/v1/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed | cancelled)
		echo "serve-smoke: job ended $state" >&2
		$CURL "$base/v1/jobs/$id" >&2
		exit 1
		;;
	esac
	sleep 0.2
done
[ "$state" = "done" ] || { echo "serve-smoke: job stuck in state '$state'" >&2; exit 1; }

$CURL "$base/v1/jobs/$id/artefacts?format=text" >"$workdir/api.txt"

echo "serve-smoke: comparing against the direct cmd/experiments run"
# -exp takes one name; running the artefacts separately and concatenating
# in print order yields the same bytes as one campaign (each artefact's
# text is self-contained, separators included).
{
	$GO run ./cmd/experiments -exp fig4 -benchmarks "$BENCHES" \
		-warmup "$WARMUP" -instructions "$INSTRUCTIONS" -parallel 4 2>/dev/null
	$GO run ./cmd/experiments -exp summary -benchmarks "$BENCHES" \
		-warmup "$WARMUP" -instructions "$INSTRUCTIONS" -parallel 4 2>/dev/null
} >"$workdir/direct.txt"

if ! cmp -s "$workdir/api.txt" "$workdir/direct.txt"; then
	echo "FAIL: API artefact bytes differ from the direct run" >&2
	diff "$workdir/direct.txt" "$workdir/api.txt" >&2 || true
	exit 1
fi

$CURL "$base/v1/stats" | grep -q '"cache_entries"' || {
	echo "serve-smoke: stats endpoint missing engine counters" >&2
	exit 1
}

echo "serve-smoke: OK ($(wc -c <"$workdir/api.txt") bytes byte-identical via API and CLI)"
